"""Black's-equation lifetime extrapolation.

Accelerated EM tests (like the paper's 230 degC, 7.96 MA/cm^2 runs)
are projected to use conditions with Black's equation::

    TTF = A * j^(-n) * exp(Ea / kT)

with ``n ~ 2`` in the nucleation-limited regime and ``n ~ 1`` in the
growth-limited regime.  The model here is the standard bridge between
the mechanistic simulators in this package and the lifetime/guardband
arithmetic in :mod:`repro.core`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro import units


@dataclass(frozen=True)
class BlacksModel:
    """Black's equation with an explicit prefactor.

    Attributes:
        prefactor: the constant ``A`` in ``TTF = A j^-n exp(Ea/kT)``;
            its unit makes TTF come out in seconds for ``j`` in A/m^2.
        current_exponent: the exponent ``n``.
        activation_energy_ev: the EM activation energy ``Ea``.
    """

    prefactor: float
    current_exponent: float = 2.0
    activation_energy_ev: float = 1.10

    def __post_init__(self) -> None:
        if self.prefactor <= 0.0:
            raise ValueError("prefactor must be positive")
        if self.current_exponent <= 0.0:
            raise ValueError("current_exponent must be positive")
        if self.activation_energy_ev <= 0.0:
            raise ValueError("activation_energy_ev must be positive")

    @classmethod
    def from_reference(cls, ttf_s: float, current_density_a_m2: float,
                       temperature_k: float, current_exponent: float = 2.0,
                       activation_energy_ev: float = 1.10) -> "BlacksModel":
        """Anchor the prefactor to one measured/simulated TTF point.

        This is how the accelerated-test result of
        :class:`~repro.em.line.EmLine` is turned into a use-condition
        lifetime estimate.
        """
        if ttf_s <= 0.0:
            raise ValueError("reference TTF must be positive")
        if current_density_a_m2 <= 0.0:
            raise ValueError("reference current density must be positive")
        boltzmann_term = math.exp(
            activation_energy_ev / (units.BOLTZMANN_EV * temperature_k))
        prefactor = (ttf_s * current_density_a_m2 ** current_exponent
                     / boltzmann_term)
        return cls(prefactor=prefactor, current_exponent=current_exponent,
                   activation_energy_ev=activation_energy_ev)

    def ttf_s(self, current_density_a_m2: float,
              temperature_k: float) -> float:
        """Median time to failure at the given operating point."""
        if current_density_a_m2 <= 0.0:
            return float("inf")
        if temperature_k <= 0.0:
            raise ValueError("temperature must be positive (kelvin)")
        return (self.prefactor
                * current_density_a_m2 ** (-self.current_exponent)
                * math.exp(self.activation_energy_ev
                           / (units.BOLTZMANN_EV * temperature_k)))

    def acceleration_factor(self, stress_density_a_m2: float,
                            stress_temperature_k: float,
                            use_density_a_m2: float,
                            use_temperature_k: float) -> float:
        """TTF(use) / TTF(stress) -- how much longer the part lives in
        the field than in the accelerated test."""
        return (self.ttf_s(use_density_a_m2, use_temperature_k)
                / self.ttf_s(stress_density_a_m2, stress_temperature_k))
