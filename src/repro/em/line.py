"""Stateful EM line model: stress evolution, voiding, recovery, resistance.

:class:`EmLine` glues together the pieces of the EM substrate:

* the :class:`~repro.em.korhonen.KorhonenSolver` stress field,
* **void nucleation** at whichever end reaches the material's critical
  tensile stress (the flat early part of the paper's Fig. 5),
* **void growth** at the electron-wind drift velocity, raising the wire
  resistance (the rising part of Fig. 5),
* **active recovery** under reverse current: the void refills at a
  boosted rate because the stored stress gradient assists the reversed
  wind (the paper measures >75 % of the wearout healed within 1/5 of
  the stress time),
* a **lock-in pathway**: void volume that has existed for a while
  becomes immobile and no longer refills -- the permanent component of
  Fig. 5; recovery scheduled early in the growth phase finds almost
  nothing locked and heals fully (Fig. 6), and
* **reverse-current EM**: prolonged recovery current is itself a
  stress and can nucleate a void at the opposite end (visible at the
  end of Fig. 6).

Temperature acceleration of both wearout and recovery comes for free
through the Arrhenius dependence of the atomic diffusivity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro import units
from repro.em.korhonen import BoundaryKind, KorhonenConfig, KorhonenSolver
from repro.em.wire import PAPER_TEST_WIRE, Wire
from repro.errors import SimulationError


@dataclass(frozen=True)
class EmStressCondition:
    """An EM operating point: signed current density and temperature.

    Attributes:
        current_density_a_m2: signed current density; positive is the
            stress direction (tension at ``x = 0``), negative is the
            reverse/recovery direction.  Use
            :func:`repro.units.ma_per_cm2` for the paper's units.
        temperature_k: wire temperature in kelvin.
        name: label used in reports.
    """

    current_density_a_m2: float
    temperature_k: float
    name: str = "em-condition"

    def __post_init__(self) -> None:
        if self.temperature_k <= 0.0:
            raise ValueError("temperature must be positive (kelvin)")

    def reversed(self, name: Optional[str] = None) -> "EmStressCondition":
        """The same operating point with the current direction flipped."""
        return EmStressCondition(
            current_density_a_m2=-self.current_density_a_m2,
            temperature_k=self.temperature_k,
            name=name or f"{self.name} (reversed)")


#: The paper's accelerated EM stress: +7.96 MA/cm^2 at 230 degC.
PAPER_EM_STRESS = EmStressCondition(
    current_density_a_m2=units.ma_per_cm2(7.96),
    temperature_k=units.celsius_to_kelvin(230.0),
    name="accelerated stress (230C, +7.96 MA/cm2)")

#: The paper's accelerated + active recovery: -7.96 MA/cm^2 at 230 degC.
PAPER_EM_RECOVERY = PAPER_EM_STRESS.reversed(
    name="accelerated+active recovery (230C, -7.96 MA/cm2)")


@dataclass
class VoidState:
    """Mutable description of the void at one line end.

    Attributes:
        nucleated: whether the critical stress has ever been reached.
        reversible_length_m: void length that reverse current can still
            refill.
        locked_length_m: immobilized void length (permanent component).
    """

    nucleated: bool = False
    reversible_length_m: float = 0.0
    locked_length_m: float = 0.0

    @property
    def total_length_m(self) -> float:
        """Total void length contributing to resistance."""
        return self.reversible_length_m + self.locked_length_m

    @property
    def is_open(self) -> bool:
        """True while any void volume exists at this end."""
        return self.total_length_m > 1e-12


@dataclass(frozen=True)
class EmLineConfig:
    """Behavioural parameters of :class:`EmLine`.

    Attributes:
        korhonen: PDE discretization parameters.
        recovery_boost: multiple of the drift velocity at which a void
            refills under reverse current.  Models the stored stress
            gradient assisting the reversed electron wind; the default
            is calibrated to the paper's ">75 % recovered within 1/5
            of the stress time" (Fig. 5).
        lock_rate_per_s: first-order rate at which reversible void
            volume immobilizes.  The default leaves ~4 % locked after
            1 h of growth (Fig. 6: full recovery) and ~25 % after 8 h
            (Fig. 5: clear permanent component).
        failure_fraction: relative resistance increase treated as a
            hard failure ("metal broke" in Fig. 7).
        max_step_s: upper bound on one coupled stress/void step.
    """

    korhonen: KorhonenConfig = field(default_factory=KorhonenConfig)
    recovery_boost: float = 4.0
    lock_rate_per_s: float = 1.6e-5
    failure_fraction: float = 0.08
    max_step_s: float = 60.0

    def __post_init__(self) -> None:
        if self.recovery_boost < 1.0:
            raise ValueError("recovery_boost must be at least 1")
        if self.lock_rate_per_s < 0.0:
            raise ValueError("lock_rate_per_s must be non-negative")
        if self.failure_fraction <= 0.0:
            raise ValueError("failure_fraction must be positive")
        if self.max_step_s <= 0.0:
            raise ValueError("max_step_s must be positive")


class EmLine:
    """One EM-stressed interconnect line with active-recovery support.

    Example (the paper's Fig. 5 protocol)::

        line = EmLine(PAPER_TEST_WIRE)
        line.apply(hours(10), PAPER_EM_STRESS)      # nucleate + grow
        line.apply(hours(2), PAPER_EM_RECOVERY)     # deep healing
        print(line.resistance_ohm(PAPER_EM_STRESS.temperature_k))
    """

    def __init__(self, wire: Wire = PAPER_TEST_WIRE,
                 config: Optional[EmLineConfig] = None):
        self.wire = wire
        self.config = config or EmLineConfig()
        self.solver = KorhonenSolver(wire.length_m, self.config.korhonen)
        self.void_start = VoidState()   # end at x = 0 (stress cathode)
        self.void_end = VoidState()     # end at x = L
        self.time_s = 0.0

    # -- observables ----------------------------------------------------

    @property
    def total_void_length_m(self) -> float:
        """Void length summed over both ends."""
        return (self.void_start.total_length_m
                + self.void_end.total_length_m)

    @property
    def locked_void_length_m(self) -> float:
        """Immobilized (permanent) void length over both ends."""
        return (self.void_start.locked_length_m
                + self.void_end.locked_length_m)

    @property
    def nucleated(self) -> bool:
        """True once a void has nucleated at either end."""
        return self.void_start.nucleated or self.void_end.nucleated

    def delta_resistance_ohm(self) -> float:
        """Void-induced resistance increase (temperature independent)."""
        return self.wire.void_resistance_per_m * self.total_void_length_m

    def resistance_ohm(self, temperature_k: float) -> float:
        """Total wire resistance at a given read-out temperature."""
        return self.wire.resistance_at(temperature_k) \
            + self.delta_resistance_ohm()

    def has_failed(self, temperature_k: float) -> bool:
        """True when the resistance exceeds the failure threshold."""
        fresh = self.wire.resistance_at(temperature_k)
        return self.delta_resistance_ohm() >= \
            self.config.failure_fraction * fresh

    def copy(self) -> "EmLine":
        """Deep copy of the line state."""
        clone = EmLine(self.wire, self.config)
        clone.solver = self.solver.copy()
        clone.void_start = VoidState(**vars(self.void_start))
        clone.void_end = VoidState(**vars(self.void_end))
        clone.time_s = self.time_s
        return clone

    def reset(self) -> None:
        """Return the line to the fresh state."""
        self.solver.reset()
        self.void_start = VoidState()
        self.void_end = VoidState()
        self.time_s = 0.0

    # -- stepping ---------------------------------------------------------

    def apply(self, duration_s: float, condition: EmStressCondition) -> None:
        """Apply a constant-condition phase for ``duration_s`` seconds."""
        if duration_s < 0.0:
            raise SimulationError("duration must be non-negative")
        remaining = duration_s
        while remaining > 1e-9:
            dt = min(remaining, self.config.max_step_s)
            self._step(dt, condition)
            remaining -= dt

    def apply_trace(self, duration_s: float, condition: EmStressCondition,
                    n_points: int,
                    readout_temperature_k: Optional[float] = None,
                    ) -> Tuple[np.ndarray, np.ndarray]:
        """Apply a phase while sampling the resistance.

        Returns ``(times_s, resistance_ohm)`` with times relative to the
        start of this phase; the read-out temperature defaults to the
        phase temperature (the paper measures in-situ in the thermal
        chamber).
        """
        if n_points < 2:
            raise ValueError("n_points must be at least 2")
        read_t = readout_temperature_k or condition.temperature_k
        times = np.linspace(0.0, duration_s, n_points)
        resistance = np.empty(n_points)
        resistance[0] = self.resistance_ohm(read_t)
        for i in range(1, n_points):
            self.apply(times[i] - times[i - 1], condition)
            resistance[i] = self.resistance_ohm(read_t)
        return times, resistance

    def time_to_nucleation(self, condition: EmStressCondition,
                           max_time_s: float,
                           probe_step_s: Optional[float] = None) -> float:
        """Wall-clock time until nucleation under a constant condition.

        Runs a *copy* of the line forward; returns ``inf`` if no void
        nucleates within ``max_time_s``.
        """
        probe = self.copy()
        step = probe_step_s or max(max_time_s / 2000.0,
                                   self.config.max_step_s)
        elapsed = 0.0
        while elapsed < max_time_s:
            if probe.nucleated:
                return elapsed
            probe.apply(step, condition)
            elapsed += step
        return float("inf") if not probe.nucleated else elapsed

    def time_to_failure(self, condition: EmStressCondition,
                        max_time_s: float,
                        probe_step_s: Optional[float] = None) -> float:
        """Wall-clock time until hard failure under a constant condition.

        Runs a *copy*; returns ``inf`` if the line survives
        ``max_time_s``.
        """
        probe = self.copy()
        step = probe_step_s or max(max_time_s / 2000.0,
                                   self.config.max_step_s)
        elapsed = 0.0
        while elapsed < max_time_s:
            if probe.has_failed(condition.temperature_k):
                return elapsed
            probe.apply(step, condition)
            elapsed += step
        return float("inf")

    # -- internals -----------------------------------------------------

    def _step(self, dt: float, condition: EmStressCondition) -> None:
        material = self.wire.material
        temp = condition.temperature_k
        j = condition.current_density_a_m2
        kappa = material.stress_diffusivity_at(temp)
        gradient = material.wind_stress_gradient(j, temp)
        drift = abs(material.drift_velocity(j, temp))

        self.solver.advance(
            dt, kappa, gradient,
            start_boundary=(BoundaryKind.VOID if self.void_start.is_open
                            else BoundaryKind.BLOCKED),
            end_boundary=(BoundaryKind.VOID if self.void_end.is_open
                          else BoundaryKind.BLOCKED))

        critical = material.critical_stress_pa
        if (not self.void_start.nucleated
                and self.solver.stress_at_start >= critical):
            self.void_start.nucleated = True
        if (not self.void_end.nucleated
                and self.solver.stress_at_end >= critical):
            self.void_end.nucleated = True

        # Positive j depletes atoms at x=0 (void there grows) and
        # back-fills a void at x=L; negative j does the opposite.
        if j > 0.0:
            self._grow(self.void_start, drift, dt)
            self._refill(self.void_end, drift, dt)
        elif j < 0.0:
            self._grow(self.void_end, drift, dt)
            self._refill(self.void_start, drift, dt)
        self._lock(self.void_start, dt)
        self._lock(self.void_end, dt)
        self.time_s += dt

    def _grow(self, void: VoidState, drift: float, dt: float) -> None:
        if void.nucleated:
            void.reversible_length_m += drift * dt

    def _refill(self, void: VoidState, drift: float, dt: float) -> None:
        if void.reversible_length_m > 0.0:
            healed = self.config.recovery_boost * drift * dt
            void.reversible_length_m = max(
                0.0, void.reversible_length_m - healed)

    def _lock(self, void: VoidState, dt: float) -> None:
        if void.reversible_length_m <= 0.0:
            return
        locked = void.reversible_length_m * (
            -np.expm1(-self.config.lock_rate_per_s * dt))
        void.reversible_length_m -= locked
        void.locked_length_m += locked
