"""Exception hierarchy for the deep-healing library.

Every error raised intentionally by the library derives from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming errors such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the deep-healing library."""


class CalibrationError(ReproError):
    """A model calibration could not be fit to the supplied measurements."""


class ConvergenceError(ReproError):
    """An iterative solver (Newton, bisection, PDE step) failed to converge."""


class NetlistError(ReproError):
    """A circuit netlist is malformed (unknown node, duplicate name, ...)."""


class ScheduleError(ReproError):
    """A recovery schedule is malformed (non-positive interval, overlap, ...)."""


class SimulationError(ReproError):
    """A simulation was driven into an invalid state."""


class SensorError(ReproError):
    """A wearout sensor was misconfigured or read out of range."""
