"""Exception hierarchy for the deep-healing library.

Every error raised intentionally by the library derives from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming errors such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the deep-healing library."""


class CalibrationError(ReproError):
    """A model calibration could not be fit to the supplied measurements."""


class ConvergenceError(ReproError):
    """An iterative solver (Newton, bisection, PDE step) failed to converge."""


class NetlistError(ReproError):
    """A circuit netlist is malformed (unknown node, duplicate name, ...)."""


class ScheduleError(ReproError):
    """A recovery schedule is malformed (non-positive interval, overlap, ...)."""


class SimulationError(ReproError):
    """A simulation was driven into an invalid state."""


class TaskError(ReproError):
    """One task of a :func:`repro.solvers.run_sweep` sweep failed.

    Raised under the default ``on_error="raise"`` policy with the
    failing task attributed: :attr:`task_index` is the position in the
    sweep's task list, :attr:`chunk_index` the submitted chunk it ran
    in, and :attr:`attempts` how many executions (1 + retries) were
    made.  The worker's original exception is chained as ``__cause__``
    whenever it survives transport back from the pool.
    """

    def __init__(self, message: str, *, task_index: int = -1,
                 chunk_index: int = -1, attempts: int = 1):
        super().__init__(message)
        self.task_index = task_index
        self.chunk_index = chunk_index
        self.attempts = attempts


class SensorError(ReproError):
    """A wearout sensor was misconfigured or read out of range."""


class CheckpointError(ReproError):
    """A fleet checkpoint could not be written, read, or applied.

    Raised by :mod:`repro.system.checkpoint` for unreadable or
    corrupt snapshot files (bad magic, checksum mismatch), for
    snapshots written under a different schema version than this
    build reads, and for checkpoint directories whose study
    fingerprint does not match the study being resumed.
    """
