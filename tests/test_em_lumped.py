"""Tests for repro.em.lumped (closed-form EM models)."""

import math

import numpy as np
import pytest

from repro import units
from repro.em.korhonen import KorhonenConfig
from repro.em.line import EmLine, EmLineConfig, EmStressCondition, \
    PAPER_EM_STRESS
from repro.em.lumped import LumpedEmModel


@pytest.fixture()
def model() -> LumpedEmModel:
    return LumpedEmModel()


class TestConstantStress:
    def test_cathode_stress_grows_like_sqrt_t(self, model):
        one = model.cathode_stress(3600.0, PAPER_EM_STRESS)
        four = model.cathode_stress(4 * 3600.0, PAPER_EM_STRESS)
        assert four == pytest.approx(2.0 * one, rel=1e-9)

    def test_nucleation_time_matches_calibration(self, model):
        t_nuc = model.nucleation_time(PAPER_EM_STRESS)
        assert units.minutes(80) < t_nuc < units.minutes(150)

    def test_nucleation_time_scales_inverse_square_in_current(self, model):
        half = EmStressCondition(
            PAPER_EM_STRESS.current_density_a_m2 / 2.0,
            PAPER_EM_STRESS.temperature_k)
        assert model.nucleation_time(half) == pytest.approx(
            4.0 * model.nucleation_time(PAPER_EM_STRESS), rel=1e-9)

    def test_stress_at_nucleation_equals_critical(self, model):
        t_nuc = model.nucleation_time(PAPER_EM_STRESS)
        stress = model.cathode_stress(t_nuc, PAPER_EM_STRESS)
        assert stress == pytest.approx(
            model.wire.material.critical_stress_pa, rel=1e-9)

    def test_no_current_never_nucleates(self, model):
        idle = EmStressCondition(0.0, PAPER_EM_STRESS.temperature_k)
        assert model.nucleation_time(idle) == float("inf")

    def test_ttf_exceeds_nucleation_time(self, model):
        assert model.time_to_failure(PAPER_EM_STRESS) \
            > model.nucleation_time(PAPER_EM_STRESS)

    def test_agrees_with_pde_nucleation(self, model):
        """The closed form should track the PDE within a few percent."""
        line = EmLine(config=EmLineConfig(
            korhonen=KorhonenConfig(n_nodes=1201, max_dt_s=30.0),
            max_step_s=30.0))
        pde = line.time_to_nucleation(PAPER_EM_STRESS,
                                      units.minutes(300),
                                      probe_step_s=units.minutes(1.0))
        closed = model.nucleation_time(PAPER_EM_STRESS)
        assert closed == pytest.approx(pde, rel=0.15)


class TestScheduleSuperposition:
    def test_single_segment_matches_constant(self, model):
        kappa = model.wire.material.stress_diffusivity_at(
            PAPER_EM_STRESS.temperature_k)
        gradient = model.wire.material.wind_stress_gradient(
            PAPER_EM_STRESS.current_density_a_m2,
            PAPER_EM_STRESS.temperature_k)
        values = model.stress_under_schedule(
            [3600.0], [0.0], [gradient], kappa)
        assert values[0] == pytest.approx(
            model.cathode_stress(3600.0, PAPER_EM_STRESS), rel=1e-12)

    def test_reversal_reduces_stress(self, model):
        kappa = model.wire.material.stress_diffusivity_at(
            PAPER_EM_STRESS.temperature_k)
        gradient = model.wire.material.wind_stress_gradient(
            PAPER_EM_STRESS.current_density_a_m2,
            PAPER_EM_STRESS.temperature_k)
        constant = model.stress_under_schedule(
            [7200.0], [0.0], [gradient], kappa)[0]
        reversed_after_1h = model.stress_under_schedule(
            [7200.0], [0.0, 3600.0], [gradient, -gradient], kappa)[0]
        assert reversed_after_1h < constant

    def test_rejects_mismatched_inputs(self, model):
        with pytest.raises(ValueError):
            model.stress_under_schedule([1.0], [0.0], [1.0, 2.0], 1e-14)

    def test_rejects_non_zero_first_step(self, model):
        with pytest.raises(ValueError):
            model.stress_under_schedule([1.0], [10.0], [1.0], 1e-14)


class TestPeriodicRecovery:
    def test_delay_factor_exceeds_one(self, model):
        factor = model.nucleation_delay_factor(
            units.minutes(15.0), units.minutes(5.0), PAPER_EM_STRESS)
        assert factor > 1.5

    def test_fig7_schedule_is_almost_3x(self, model):
        """15 min : 5 min periodic recovery delays nucleation ~3x."""
        factor = model.nucleation_delay_factor(
            units.minutes(15.0), units.minutes(5.0), PAPER_EM_STRESS)
        assert 2.5 < factor < 3.7

    def test_more_recovery_delays_more(self, model):
        light = model.nucleation_delay_factor(
            units.minutes(20.0), units.minutes(2.0), PAPER_EM_STRESS)
        heavy = model.nucleation_delay_factor(
            units.minutes(20.0), units.minutes(10.0), PAPER_EM_STRESS)
        assert heavy > light

    def test_symmetric_schedule_never_nucleates(self, model):
        """1:1 stress:recovery has zero mean drift -> no nucleation."""
        estimate = model.nucleation_under_periodic_recovery(
            units.minutes(10.0), units.minutes(10.0), PAPER_EM_STRESS,
            max_cycles=200)
        assert math.isinf(estimate.time_s)

    def test_estimate_reports_cycles_and_stress_time(self, model):
        estimate = model.nucleation_under_periodic_recovery(
            units.minutes(15.0), units.minutes(5.0), PAPER_EM_STRESS)
        assert estimate.cycles > 0
        assert 0.0 < estimate.stress_time_s <= estimate.time_s

    def test_zero_recovery_matches_continuous(self, model):
        estimate = model.nucleation_under_periodic_recovery(
            units.minutes(10.0), 0.0, PAPER_EM_STRESS,
            samples_per_interval=64)
        assert estimate.time_s == pytest.approx(
            model.nucleation_time(PAPER_EM_STRESS), rel=0.05)

    def test_rejects_bad_intervals(self, model):
        with pytest.raises(ValueError):
            model.nucleation_under_periodic_recovery(
                0.0, 1.0, PAPER_EM_STRESS)
