"""Cross-module integration tests: the paper's protocols end to end.

Each test here stitches several packages together the way the paper's
experiments do, asserting the *published* qualitative outcomes.
"""

import numpy as np
import pytest

from repro import units
from repro.assist.circuitry import AssistCircuit
from repro.assist.modes import AssistMode
from repro.bti.conditions import (
    ACTIVE_ACCELERATED_RECOVERY,
    TABLE1_RECOVERY_CONDITIONS,
)
from repro.core.balance import PushPullBalancer
from repro.core.schedule import PeriodicSchedule, run_bti_schedule, \
    run_em_schedule
from repro.em.line import EmLine, PAPER_EM_RECOVERY, PAPER_EM_STRESS
from repro.em.lumped import LumpedEmModel
from repro.pdn.grid import PdnGrid
from repro.pdn.irdrop import solve_ir_drop
from repro.sensors.bti_sensor import BtiSensor
from repro.sensors.em_sensor import EmResistanceSensor
from repro.sensors.ring_oscillator import RingOscillator


class TestPaperHeadlineResults:
    def test_table1_ordering_end_to_end(self, calibration):
        """All four recovery conditions, ordered as measured."""
        model = calibration.build_model()
        fractions = [model.recovery_fraction_after(
            units.hours(24.0), units.hours(6.0), condition)
            for condition in TABLE1_RECOVERY_CONDITIONS]
        assert fractions[0] < fractions[1] < fractions[3]
        assert fractions[0] < fractions[2] < fractions[3]
        assert fractions[3] > 0.7

    def test_push_pull_balance_generalizes(self, calibration):
        """The balancer's schedule, run through the mechanistic
        model, really does keep the permanent component at zero."""
        balancer = PushPullBalancer(calibration)
        result = balancer.balance_bti(units.hours(1.0))
        outcome = run_bti_schedule(
            calibration.build_model(),
            PeriodicSchedule(result.schedule.stress_interval_s,
                             result.schedule.recovery_interval_s, 8),
            ACTIVE_ACCELERATED_RECOVERY)
        assert outcome.fully_healed

    def test_em_balancer_schedule_verified_by_pde(self, calibration,
                                                  fast_em_config):
        """The lumped-model EM schedule holds up in the PDE model."""
        balancer = PushPullBalancer(calibration)
        result = balancer.balance_em(PAPER_EM_STRESS, duty_cycle=0.75)
        schedule = result.schedule
        lumped_nuc = LumpedEmModel().nucleation_time(PAPER_EM_STRESS)
        cycles = int(np.ceil(1.5 * lumped_nuc
                             / schedule.cycle_length_s))
        outcome = run_em_schedule(
            EmLine(config=fast_em_config),
            PeriodicSchedule(schedule.stress_interval_s,
                             schedule.recovery_interval_s, cycles),
            PAPER_EM_STRESS)
        # Continuous stress would have nucleated well within this
        # window; the scheduled line must still be void-free.
        assert outcome.survived_nucleation


class TestSensorLoop:
    def test_bti_sensor_tracks_the_real_model(self, calibration):
        model = calibration.build_model()
        sensor = BtiSensor(model, gate_window_s=1.0)
        fresh = sensor.read()
        model.apply_stress(units.hours(24.0))
        aged = sensor.read()
        assert aged.delta_vth_v > fresh.delta_vth_v
        assert aged.delta_vth_v == pytest.approx(model.delta_vth_v,
                                                 abs=1e-3)

    def test_em_sensor_sees_void_growth_onset(self, fast_em_config):
        line = EmLine(config=fast_em_config)
        sensor = EmResistanceSensor(
            line, PAPER_EM_STRESS.temperature_k, quantum_ohm=1e-4)
        step = units.minutes(30.0)
        for epoch in range(10):
            sensor.read(epoch * step)
            line.apply(step, PAPER_EM_STRESS)
        assert line.nucleated
        assert sensor.growth_detected(1e-6, window=4)

    def test_ro_frequency_reflects_healing(self, calibration):
        model = calibration.build_model()
        ro = RingOscillator()
        model.apply_stress(units.hours(24.0))
        aged_f = ro.frequency_hz(model.delta_vth_v)
        model.apply_recovery(units.hours(6.0),
                             ACTIVE_ACCELERATED_RECOVERY)
        healed_f = ro.frequency_hz(model.delta_vth_v)
        assert healed_f > aged_f


class TestPdnToEmPipeline:
    def test_ir_drop_feeds_em_exposure(self):
        grid = PdnGrid.with_corner_pads(6, 6)
        grid.add_load(3, 3, 0.2)
        solution = solve_ir_drop(grid)
        exposure = solution.em_exposure(
            units.celsius_to_kelvin(105.0), count=3)
        assert len(exposure) == 3
        # The most critical segment fails first (smallest t_nuc).
        times = [t for _segment, t in exposure]
        assert times[0] <= times[-1]

    def test_reversing_grid_current_with_assist_circuit(self,
                                                        fast_em_config):
        """End to end: the assist circuit reverses the current that an
        EM line sees, which heals it."""
        assist = AssistCircuit()
        normal = assist.solve_mode(AssistMode.NORMAL)
        em = assist.solve_mode(AssistMode.EM_RECOVERY)
        line = EmLine(config=fast_em_config)
        area = line.wire.cross_section_m2
        scale = PAPER_EM_STRESS.current_density_a_m2 \
            / (normal.vdd_grid_current_a / area)
        forward = line.wire.density_for_current(
            normal.vdd_grid_current_a) * scale
        reverse = line.wire.density_for_current(
            em.vdd_grid_current_a) * scale
        from repro.em.line import EmStressCondition
        temp = PAPER_EM_STRESS.temperature_k
        line.apply(units.minutes(400.0),
                   EmStressCondition(forward, temp))
        worn = line.delta_resistance_ohm()
        line.apply(units.minutes(200.0),
                   EmStressCondition(reverse, temp))
        assert line.delta_resistance_ohm() < worn


class TestPlannerToControllerPipeline:
    def test_planned_schedule_holds_up_in_the_controller(self,
                                                         calibration,
                                                         fast_em_config):
        """A plan from the RecoveryPlanner, executed epoch by epoch by
        the RuntimeController, keeps the permanent component at zero."""
        from repro.core.controller import PeriodicPolicy, \
            RuntimeController
        from repro.core.planner import RecoveryPlanner
        from repro.bti.conditions import BtiStressCondition
        from repro.em.line import EmLine, EmStressCondition

        use = BtiStressCondition(
            voltage=0.45, temperature_k=units.celsius_to_kelvin(60.0))
        grid = EmStressCondition(units.ma_per_cm2(6.0),
                                 units.celsius_to_kelvin(105.0))
        plan = RecoveryPlanner(calibration).plan(units.years(10.0),
                                                 use, grid)
        # Controller epochs sized so the plan's cadence maps onto an
        # integer epoch pattern (one recovery epoch per k epochs).
        epoch_s = plan.bti_recovery_interval_s
        k = max(int(round(plan.bti_stress_interval_s / epoch_s)), 1)
        controller = RuntimeController(
            bti_model=calibration.build_model(),
            em_line=EmLine(config=fast_em_config),
            bti_stress=use,
            em_stress=grid,
            bti_recovery=plan.bti_recovery,
            epoch_s=epoch_s)
        controller.run((k + 1) * epoch_s * 6,
                       PeriodicPolicy(bti_every=k + 1))
        assert controller.bti_model.permanent_vth_v \
            == pytest.approx(0.0, abs=1e-9)


class TestBtiToCircuitPipeline:
    def test_aged_vth_weakens_a_simulated_circuit(self, calibration):
        """BTI model output plugs directly into the circuit simulator."""
        from repro.circuit.dc import dc_operating_point
        from repro.circuit.mosfet import NMOS_28NM
        from repro.circuit.netlist import Circuit

        model = calibration.build_model()
        model.apply_stress(units.hours(24.0))
        shift = model.delta_vth_v

        def inverter_low(vth_shift: float) -> float:
            circuit = Circuit()
            circuit.add_voltage_source("vdd", "vdd", "gnd", 1.0)
            circuit.add_voltage_source("vg", "g", "gnd", 1.0)
            circuit.add_resistor("rl", "vdd", "out", 20000.0)
            circuit.add_mosfet("m", "out", "g", "gnd",
                               NMOS_28NM.with_vth_shift(vth_shift))
            return dc_operating_point(circuit).voltage("out")

        assert inverter_low(shift) > inverter_low(0.0)
