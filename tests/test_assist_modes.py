"""Tests for repro.assist.modes (the Fig. 8(b) truth table)."""

import pytest

from repro.assist.modes import (
    AssistMode,
    DEVICE_NAMES,
    DeviceState,
    TRUTH_TABLE,
    gate_voltage,
    gate_voltages,
)


class TestTruthTable:
    def test_covers_all_modes(self):
        assert set(TRUTH_TABLE) == set(AssistMode)

    def test_covers_all_devices(self):
        for mode in AssistMode:
            assert set(TRUTH_TABLE[mode]) == set(DEVICE_NAMES)

    def test_normal_and_em_are_complementary_on_grid_devices(self):
        """The H-bridge devices swap roles between Normal and EM mode."""
        normal = TRUTH_TABLE[AssistMode.NORMAL]
        em = TRUTH_TABLE[AssistMode.EM_RECOVERY]
        for device in ("P1", "P2", "P3", "P4", "N1", "N2", "N3", "N4"):
            assert normal[device] != em[device]

    def test_bti_devices_off_outside_bti_mode(self):
        for mode in (AssistMode.NORMAL, AssistMode.EM_RECOVERY):
            assert TRUTH_TABLE[mode]["P5"] is DeviceState.OFF
            assert TRUTH_TABLE[mode]["N5"] is DeviceState.OFF

    def test_bti_mode_isolates_the_grids(self):
        bti = TRUTH_TABLE[AssistMode.BTI_RECOVERY]
        for device in ("P1", "P2", "P3", "P4", "N1", "N2", "N3", "N4"):
            assert bti[device] is DeviceState.OFF
        assert bti["P5"] is DeviceState.ON
        assert bti["N5"] is DeviceState.ON

    def test_each_mode_has_a_conducting_path(self):
        for mode in AssistMode:
            on_devices = [device for device, state
                          in TRUTH_TABLE[mode].items()
                          if state is DeviceState.ON]
            assert len(on_devices) >= 2


class TestGateVoltages:
    def test_pmos_on_is_grounded_gate(self):
        assert gate_voltage("P1", DeviceState.ON, 1.0) == 0.0

    def test_pmos_off_is_supply_gate(self):
        assert gate_voltage("P1", DeviceState.OFF, 1.0) == 1.0

    def test_nmos_on_is_supply_gate(self):
        assert gate_voltage("N1", DeviceState.ON, 1.0) == 1.0

    def test_nmos_off_is_grounded_gate(self):
        assert gate_voltage("N1", DeviceState.OFF, 1.0) == 0.0

    def test_gate_voltages_cover_all_devices(self):
        drives = gate_voltages(AssistMode.NORMAL, 1.0)
        assert set(drives) == set(DEVICE_NAMES)

    def test_gate_voltages_match_truth_table(self):
        drives = gate_voltages(AssistMode.EM_RECOVERY, 1.0)
        assert drives["P2"] == 0.0   # ON PMOS
        assert drives["P1"] == 1.0   # OFF PMOS
        assert drives["N1"] == 1.0   # ON NMOS
        assert drives["N2"] == 0.0   # OFF NMOS
