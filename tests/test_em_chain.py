"""Tests for repro.em.chain (via-separated interconnect chains)."""

import pytest

from repro import units
from repro.em.blech import critical_length_m
from repro.em.chain import InterconnectChain, segment_stripe
from repro.em.line import PAPER_EM_STRESS
from repro.em.wire import COPPER, PAPER_TEST_WIRE
from repro.errors import SimulationError

HOT = PAPER_EM_STRESS.temperature_k


def make_chain(n_segments: int) -> InterconnectChain:
    segments = segment_stripe(PAPER_TEST_WIRE.length_m, n_segments,
                              PAPER_TEST_WIRE)
    return InterconnectChain(segments, PAPER_EM_STRESS)


class TestSegmentation:
    def test_segment_count(self):
        assert make_chain(5).n_segments == 5

    def test_segmentation_preserves_fresh_resistance(self):
        chain = make_chain(7)
        assert chain.fresh_resistance_ohm(HOT) == pytest.approx(
            PAPER_TEST_WIRE.resistance_at(HOT), rel=1e-9)

    def test_fine_segmentation_reaches_immortality(self):
        l_crit = critical_length_m(
            COPPER, PAPER_EM_STRESS.current_density_a_m2, HOT)
        n_needed = int(PAPER_TEST_WIRE.length_m / l_crit) + 1
        chain = make_chain(2 * n_needed)
        assert chain.n_immortal == chain.n_segments

    def test_coarse_segments_stay_mortal(self):
        chain = make_chain(3)
        assert chain.n_immortal == 0

    def test_rejects_empty_chain(self):
        with pytest.raises(SimulationError):
            InterconnectChain([], PAPER_EM_STRESS)

    def test_rejects_bad_stripe_args(self):
        with pytest.raises(SimulationError):
            segment_stripe(0.0, 3, PAPER_TEST_WIRE)
        with pytest.raises(SimulationError):
            segment_stripe(1e-3, 0, PAPER_TEST_WIRE)


class TestAging:
    def test_immortal_chain_never_degrades(self):
        l_crit = critical_length_m(
            COPPER, PAPER_EM_STRESS.current_density_a_m2, HOT)
        n = int(PAPER_TEST_WIRE.length_m / (0.5 * l_crit)) + 1
        chain = make_chain(n)
        assert chain.n_immortal == n
        chain.apply(units.hours(40.0), PAPER_EM_STRESS)
        assert chain.delta_resistance_ohm() == 0.0
        assert not chain.has_failed(HOT)

    def test_mortal_chain_degrades(self):
        chain = make_chain(3)
        chain.apply(units.hours(10.0), PAPER_EM_STRESS)
        assert chain.delta_resistance_ohm() > 0.0

    def test_weakest_link_failure(self):
        """With heterogeneous segments the shortest (lowest-resistance)
        one trips its own threshold long before the chain's total
        resistance budget is consumed -- the weakest-link effect."""
        from dataclasses import replace
        short = segment_stripe(0.1e-3, 1, PAPER_TEST_WIRE)[0]
        long = segment_stripe(2.5e-3, 1, PAPER_TEST_WIRE)[0]
        chain = InterconnectChain(
            [replace(short, name="short"), replace(long, name="long")],
            PAPER_EM_STRESS)
        step = units.minutes(20.0)
        while not chain.has_failed(HOT):
            chain.apply(step, PAPER_EM_STRESS)
            assert chain.time_s < units.hours(48.0)
        fraction = chain.config.failure_fraction
        total_fresh = chain.fresh_resistance_ohm(HOT)
        assert chain.delta_resistance_ohm() < fraction * total_fresh
        assert chain.worst_segment_index() == 0  # same absolute damage
        # The short segment is the one past its own threshold.
        short_state = chain.segments[0]
        assert short_state.delta_resistance_ohm() >= fraction \
            * short_state.wire.resistance_at(HOT)

    def test_recovery_heals_the_chain(self):
        chain = make_chain(3)
        chain.apply(units.minutes(500.0), PAPER_EM_STRESS)
        worn = chain.delta_resistance_ohm()
        chain.apply(units.minutes(200.0), PAPER_EM_STRESS.reversed())
        assert chain.delta_resistance_ohm() < worn

    def test_worst_segment_index_in_range(self):
        chain = make_chain(4)
        chain.apply(units.hours(8.0), PAPER_EM_STRESS)
        assert 0 <= chain.worst_segment_index() < 4

    def test_rejects_negative_duration(self):
        with pytest.raises(SimulationError):
            make_chain(2).apply(-1.0, PAPER_EM_STRESS)

    def test_rejects_reverse_reference(self):
        segments = segment_stripe(1e-3, 2, PAPER_TEST_WIRE)
        with pytest.raises(SimulationError):
            InterconnectChain(segments, PAPER_EM_STRESS.reversed())
