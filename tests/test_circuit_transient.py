"""Tests for repro.circuit.transient (backward-Euler transient)."""

import math

import numpy as np
import pytest

from repro.circuit.netlist import Circuit
from repro.circuit.transient import transient


def rc_circuit() -> Circuit:
    circuit = Circuit("rc")
    circuit.add_voltage_source("vs", "in", "gnd", 0.0)
    circuit.add_resistor("r", "in", "out", 1000.0)
    circuit.add_capacitor("c", "out", "gnd", 1e-6)
    return circuit


class TestRcStep:
    def test_step_response_time_constant(self):
        circuit = rc_circuit()
        result = transient(circuit, stop_s=5e-3, dt_s=5e-6,
                           waveforms={"vs": lambda t: 1.0 if t > 0
                                      else 0.0})
        wave = result.voltage("out")
        # At t = tau = 1 ms the output should be ~1 - 1/e.
        index = int(round(1e-3 / 5e-6))
        assert wave[index] == pytest.approx(1.0 - math.exp(-1.0),
                                            abs=0.01)

    def test_final_value_reaches_input(self):
        circuit = rc_circuit()
        result = transient(circuit, stop_s=10e-3, dt_s=1e-5,
                           waveforms={"vs": lambda t: 1.0})
        assert result.voltage("out")[-1] == pytest.approx(1.0, abs=1e-3)

    def test_from_dc_starts_settled(self):
        circuit = rc_circuit()
        circuit.find_voltage_source("vs").volts = 1.0
        result = transient(circuit, stop_s=1e-3, dt_s=1e-5)
        wave = result.voltage("out")
        assert np.allclose(wave, 1.0, atol=1e-6)

    def test_settle_time_metric(self):
        circuit = rc_circuit()
        result = transient(circuit, stop_s=10e-3, dt_s=1e-5,
                           waveforms={"vs": lambda t: 1.0 if t > 0
                                      else 0.0})
        settle = result.settle_time("out", 1.0, tolerance_v=0.05)
        # v reaches 0.95 at t = 3 tau = 3 ms.
        assert settle == pytest.approx(3e-3, rel=0.1)

    def test_settle_time_inf_when_never_settling(self):
        circuit = rc_circuit()
        result = transient(circuit, stop_s=1e-4, dt_s=1e-5,
                           waveforms={"vs": lambda t: 1.0 if t > 0
                                      else 0.0})
        assert result.settle_time("out", 1.0, 0.01) == float("inf")


class TestApi:
    def test_rejects_unknown_waveform_target(self):
        # Regression: a mistyped source name used to surface as a
        # confusing ConvergenceError from deep inside the Newton loop;
        # it must be a ValueError naming the offending waveform.
        circuit = rc_circuit()
        with pytest.raises(ValueError, match="nope"):
            transient(circuit, 1e-3, 1e-5,
                      waveforms={"nope": lambda t: 0.0})

    def test_rejects_bad_times(self):
        with pytest.raises(ValueError):
            transient(rc_circuit(), 0.0, 1e-5)

    def test_result_times_cover_range(self):
        result = transient(rc_circuit(), stop_s=1e-3, dt_s=1e-4)
        assert result.times_s[0] == 0.0
        assert result.times_s[-1] == pytest.approx(1e-3)
        assert len(result.times_s) == 11

    def test_resistor_current_waveform(self):
        circuit = rc_circuit()
        result = transient(circuit, stop_s=5e-3, dt_s=1e-5,
                           waveforms={"vs": lambda t: 1.0 if t > 0
                                      else 0.0})
        current = result.resistor_current("r")
        # Current spikes at the step then decays toward zero.
        assert current[1] > current[-1]
        assert current[-1] == pytest.approx(0.0, abs=1e-5)

    def test_current_source_waveform_drive(self):
        circuit = Circuit()
        circuit.add_current_source("i", "gnd", "out", 0.0)
        circuit.add_resistor("r", "out", "gnd", 1000.0)
        result = transient(circuit, stop_s=1e-3, dt_s=1e-4,
                           waveforms={"i": lambda t: 1e-3 if t > 5e-4
                                      else 0.0})
        wave = result.voltage("out")
        assert wave[2] == pytest.approx(0.0, abs=1e-9)
        assert wave[-1] == pytest.approx(1.0, abs=1e-6)

    def test_final_voltages(self):
        circuit = rc_circuit()
        circuit.find_voltage_source("vs").volts = 0.5
        result = transient(circuit, stop_s=1e-3, dt_s=1e-4)
        assert result.final_voltages()["in"] == pytest.approx(0.5)
