"""Tests for repro.core.engine (the DeepHealingEngine facade)."""

import pytest

from repro import units
from repro.core.controller import PeriodicPolicy
from repro.core.engine import DeepHealingEngine
from repro.em.line import EmLine
from repro.errors import SimulationError


@pytest.fixture()
def engine(calibration, fast_em_config) -> DeepHealingEngine:
    return DeepHealingEngine(calibration=calibration,
                             em_line=EmLine(config=fast_em_config))


class TestEngine:
    def test_assist_modes_verify(self, engine):
        assert engine.verify_assist_modes()

    def test_simulation_produces_a_report(self, engine):
        report = engine.simulate(units.hours(4.0),
                                 PeriodicPolicy(bti_every=2))
        assert report.normal_epochs + report.bti_epochs \
            + report.em_epochs == 8
        assert report.availability == pytest.approx(0.5)

    def test_healing_policy_beats_none(self, calibration,
                                       fast_em_config):
        healed = DeepHealingEngine(calibration=calibration,
                                   em_line=EmLine(config=fast_em_config))
        healed_report = healed.simulate(units.hours(6.0),
                                        PeriodicPolicy(bti_every=2))
        unhealed = DeepHealingEngine(
            calibration=calibration,
            em_line=EmLine(config=fast_em_config))
        unhealed_report = unhealed.simulate(units.hours(6.0),
                                            PeriodicPolicy(bti_every=0))
        assert healed_report.final_delta_vth_v \
            < unhealed_report.final_delta_vth_v

    def test_report_describe_is_readable(self, engine):
        report = engine.simulate(units.hours(2.0),
                                 PeriodicPolicy(bti_every=2))
        text = report.describe()
        assert "BTI shift" in text
        assert "availability" in text

    def test_rejects_bad_duration(self, engine):
        with pytest.raises(SimulationError):
            engine.simulate(0.0, PeriodicPolicy())

    def test_with_defaults_builds(self):
        engine = DeepHealingEngine.with_defaults()
        assert engine.bti_model.delta_vth_v == 0.0
