"""Tests for repro.em.wire (materials and wire geometry)."""

import pytest

from repro import units
from repro.em.wire import COPPER, Material, PAPER_TEST_WIRE, Wire


class TestMaterial:
    def test_resistivity_rises_with_temperature(self):
        cold = COPPER.resistivity_at(units.celsius_to_kelvin(20.0))
        hot = COPPER.resistivity_at(units.celsius_to_kelvin(230.0))
        assert hot > cold

    def test_resistivity_at_reference(self):
        assert COPPER.resistivity_at(
            COPPER.reference_temperature_k) == pytest.approx(
            COPPER.resistivity_ohm_m)

    def test_diffusivity_is_arrhenius(self):
        t1, t2 = 400.0, 500.0
        ratio = COPPER.diffusivity_at(t2) / COPPER.diffusivity_at(t1)
        expected = units.arrhenius_factor(
            COPPER.activation_energy_ev, t2, t1)
        assert ratio == pytest.approx(expected)

    def test_stress_diffusivity_positive_and_small(self):
        kappa = COPPER.stress_diffusivity_at(
            units.celsius_to_kelvin(230.0))
        assert 0.0 < kappa < 1e-10

    def test_wind_gradient_sign_follows_current(self):
        temp = units.celsius_to_kelvin(230.0)
        forward = COPPER.wind_stress_gradient(units.ma_per_cm2(7.96),
                                              temp)
        reverse = COPPER.wind_stress_gradient(-units.ma_per_cm2(7.96),
                                              temp)
        assert forward > 0.0
        assert reverse == pytest.approx(-forward)

    def test_drift_velocity_scales_with_current(self):
        temp = units.celsius_to_kelvin(230.0)
        v1 = COPPER.drift_velocity(units.ma_per_cm2(4.0), temp)
        v2 = COPPER.drift_velocity(units.ma_per_cm2(8.0), temp)
        assert v2 == pytest.approx(2.0 * v1, rel=1e-3)

    def test_rejects_non_positive_parameters(self):
        with pytest.raises(ValueError):
            Material(name="bad", resistivity_ohm_m=-1.0, tcr_per_k=0.004,
                     reference_temperature_k=293.0,
                     diffusivity_prefactor_m2_s=1e-5,
                     activation_energy_ev=1.0, effective_charge=1.0,
                     atomic_volume_m3=1e-29,
                     effective_modulus_pa=1e10,
                     critical_stress_pa=5e8)


class TestPaperTestWire:
    def test_fig3_geometry(self):
        assert PAPER_TEST_WIRE.length_m == pytest.approx(2.673e-3)
        assert PAPER_TEST_WIRE.width_m == pytest.approx(1.57e-6)
        assert PAPER_TEST_WIRE.thickness_m == pytest.approx(0.8e-6)

    def test_fig3_room_temperature_resistance(self):
        assert PAPER_TEST_WIRE.resistance_at(
            units.celsius_to_kelvin(20.0)) == pytest.approx(35.76)

    def test_fig5_hot_resistance(self):
        # Fig. 5 starts near 72.8 ohm at the 230 degC stress temperature.
        hot = PAPER_TEST_WIRE.resistance_at(
            units.celsius_to_kelvin(230.0))
        assert hot == pytest.approx(72.8, abs=0.3)

    def test_cross_section(self):
        assert PAPER_TEST_WIRE.cross_section_m2 == pytest.approx(
            1.57e-6 * 0.8e-6)

    def test_current_density_roundtrip(self):
        current = PAPER_TEST_WIRE.current_for_density(
            units.ma_per_cm2(7.96))
        assert PAPER_TEST_WIRE.density_for_current(
            current) == pytest.approx(units.ma_per_cm2(7.96))

    def test_paper_stress_current_magnitude(self):
        # 7.96 MA/cm^2 through the 1.57 um x 0.8 um wire is ~100 mA.
        current = PAPER_TEST_WIRE.current_for_density(
            units.ma_per_cm2(7.96))
        assert current == pytest.approx(0.1, rel=0.05)

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            Wire(length_m=0.0)
