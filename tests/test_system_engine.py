"""Property and equivalence tests for the vectorized epoch engine.

The system simulator's hot path was rewritten array-native (PR 3):
condition-kernel lookup tables, memoized thermal / condition / aging /
EM-rate computations, and in-place masked trap updates.  These tests
pin the contract that made the rewrite safe:

* every array kernel matches its scalar origin elementwise (<= 1e-9);
* the full simulator matches the seed's scalar epoch loop (kept
  verbatim in :mod:`benchmarks.seed_system`) to 1e-10 on every
  ``SystemResult`` field;
* every cache (thermal steady state, condition bundle, BTI sub-step
  kernel, EM rate factors) is observably hit *and* changes nothing;
* the pooled lifetime sweep equals the serial one cell for cell.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import units
from repro.bti.conditions import (
    ACTIVE_RECOVERY_BIAS_V,
    BtiConditionKernels,
    BtiRecoveryCondition,
    BtiStressCondition,
)
from repro.errors import SensorError, SimulationError
from repro.sensors.ring_oscillator import RingOscillator
from repro.system.aging import FleetBtiState, FleetEmState
from repro.system.chip import Chip
from repro.system.scheduler import (
    NoRecoveryPolicy,
    RoundRobinRecoveryPolicy,
)
from repro.system.simulator import SystemSimulator
from repro.system.sweeps import ChipConfig, run_lifetime_sweep
from repro.system.workload import ConstantWorkload, RandomWorkload
from repro.thermal.floorplan import Floorplan
from repro.thermal.network import ThermalNetworkConfig, ThermalRCNetwork

from benchmarks.seed_system import SeedFleetBtiState, SeedSystemSimulator

KERNEL_RTOL = 1e-9
RESULT_RTOL = 1e-10

#: Temperatures straddling the kernels' default (250, 450) K grid --
#: the affine-in-1/T exponents extrapolate exactly outside it.
TEMPERATURES_K = np.array(
    [230.0, 250.0, 293.15, 322.7, 358.0, 383.15, 450.0, 475.0])


def relative_error(values, reference):
    values = np.asarray(values, dtype=float)
    reference = np.asarray(reference, dtype=float)
    scale = max(float(np.abs(reference).max(initial=0.0)), 1e-30)
    return float(np.abs(values - reference).max(initial=0.0)) / scale


def result_difference(result, reference):
    """Worst scaled difference over every ``SystemResult`` field."""
    worst = 0.0
    for field in ("times_s", "worst_degradation", "mean_degradation",
                  "dropped_demand", "final_delta_vth_v",
                  "final_permanent_vth_v", "final_em_drift_ohm"):
        a = np.asarray(getattr(result, field), dtype=float)
        b = np.asarray(getattr(reference, field), dtype=float)
        assert a.shape == b.shape, field
        scale = max(float(np.abs(b).max(initial=0.0)), 1.0)
        worst = max(worst,
                    float(np.abs(a - b).max(initial=0.0)) / scale)
    assert np.array_equal(result.em_failures, reference.em_failures)
    assert result.migration_events == reference.migration_events
    assert result.n_epochs == reference.n_epochs
    for field in ("total_demand", "total_dropped_demand"):
        a, b = getattr(result, field), getattr(reference, field)
        worst = max(worst, abs(a - b) / max(abs(b), 1.0))
    return worst


@pytest.fixture(scope="module")
def kernels(calibration):
    config = calibration.model_config
    return BtiConditionKernels(config.acceleration,
                               config.reference_stress,
                               stress_voltage_v=0.45)


class TestConditionKernels:
    """Array kernels vs the scalar condition objects they replace."""

    def test_capture_matches_scalar(self, kernels, calibration):
        reference = calibration.model_config.reference_stress
        for utilization in (0.05, 0.3, 0.72, 1.0):
            util = np.full(TEMPERATURES_K.shape, utilization)
            accel = kernels.capture_acceleration_array(
                TEMPERATURES_K, util)
            expected = np.array([
                utilization * BtiStressCondition(
                    voltage=0.45, temperature_k=t)
                .capture_acceleration(reference)
                for t in TEMPERATURES_K])
            assert relative_error(accel, expected) <= KERNEL_RTOL

    def test_idle_cores_pin_to_exact_zero(self, kernels):
        accel = kernels.capture_acceleration_array(
            TEMPERATURES_K, np.zeros_like(TEMPERATURES_K))
        assert np.array_equal(accel, np.zeros_like(TEMPERATURES_K))

    def test_recovery_matches_scalar(self, kernels, calibration):
        params = calibration.model_config.acceleration
        for recovering in (np.zeros(len(TEMPERATURES_K), dtype=bool),
                           np.ones(len(TEMPERATURES_K), dtype=bool),
                           TEMPERATURES_K > 330.0):
            accel = kernels.recovery_acceleration_array(
                TEMPERATURES_K, recovering)
            expected = np.array([
                BtiRecoveryCondition(
                    gate_bias_v=ACTIVE_RECOVERY_BIAS_V if active
                    else 0.0,
                    temperature_k=t).acceleration(params)
                for t, active in zip(TEMPERATURES_K, recovering)])
            assert relative_error(accel, expected) <= KERNEL_RTOL

    def test_nonpositive_temperature_rejected(self, kernels):
        with pytest.raises(ValueError):
            kernels.capture_acceleration_array(
                np.array([300.0, 0.0]), np.array([0.5, 0.5]))
        with pytest.raises(ValueError):
            kernels.recovery_acceleration_array(
                np.array([-10.0]), np.array([True]))


class TestOscillatorArrays:
    """Vectorized RO paths vs the scalar model, including edges."""

    def test_matches_scalar_everywhere(self):
        oscillator = RingOscillator()
        overdrive = oscillator.supply_v - oscillator.fresh_vth_v
        shifts = np.array([0.0, 1e-6, 0.013, 0.21, overdrive / 2.0,
                           overdrive, overdrive + 0.1])
        frequency = oscillator.frequency_hz_array(shifts)
        delay = oscillator.delay_degradation_array(shifts)
        loss = oscillator.frequency_degradation_array(shifts)
        for i, shift in enumerate(shifts):
            assert frequency[i] == oscillator.frequency_hz(shift)
            assert delay[i] == oscillator.delay_degradation(shift)
            assert loss[i] == oscillator.frequency_degradation(shift)
        # Exhausted overdrive: 0 Hz, infinite delay degradation.
        assert frequency[-1] == 0.0
        assert np.isinf(delay[-1])

    def test_all_positive_fast_path(self):
        oscillator = RingOscillator()
        shifts = np.linspace(0.0, 0.3, 11)
        delay = oscillator.delay_degradation_array(shifts)
        expected = np.array([oscillator.delay_degradation(s)
                             for s in shifts])
        assert np.array_equal(delay, expected)
        assert np.all(np.isfinite(delay))

    def test_negative_shift_rejected(self):
        with pytest.raises(SensorError):
            RingOscillator().frequency_hz_array(
                np.array([0.1, -1e-12]))


class TestThermalMemoization:
    """steady_state_cached: identical results, observable hits."""

    def _network(self, **kwargs):
        return ThermalRCNetwork(Floorplan.grid(3, 3), **kwargs)

    def test_hit_is_bit_identical_to_solve(self):
        network = self._network()
        cached = self._network()
        rng = np.random.default_rng(3)
        vectors = [rng.uniform(0.1, 1.5, size=9) for _ in range(4)]
        for power in vectors * 3:
            direct = network.steady_state(power)
            memoized = cached.steady_state_cached(power)
            assert np.array_equal(direct, memoized)
            assert np.array_equal(cached.temperatures_k, direct)
        assert cached.steady_cache.misses == len(vectors)
        assert cached.steady_cache.hits == 2 * len(vectors)

    def test_returned_array_is_a_private_copy(self):
        network = self._network()
        power = np.full(9, 0.8)
        first = network.steady_state_cached(power)
        first += 1e6
        again = network.steady_state_cached(power)
        assert again.max() < 1e5

    def test_quantized_mode_coalesces_nearby_powers(self):
        network = self._network(steady_cache_quantum_w=1e-3)
        base = np.full(9, 0.75)
        first = network.steady_state_cached(base)
        second = network.steady_state_cached(base + 1e-5)
        assert np.array_equal(first, second)
        assert network.steady_cache.hits == 1

    def test_lru_capacity_is_bounded(self):
        network = self._network(steady_cache_size=2)
        for scale in (0.2, 0.4, 0.6, 0.8):
            network.steady_state_cached(np.full(9, scale))
        assert len(network.steady_cache) == 2


class TestFleetBtiEquivalence:
    """Vectorized sub-step kernel vs the seed's fancy-indexed loop."""

    N_UNITS = 8
    DT_S = units.hours(1.0)

    def _pair(self):
        return FleetBtiState(self.N_UNITS), \
            SeedFleetBtiState(self.N_UNITS)

    def _compare(self, state, seed_state):
        assert relative_error(state.occupancy,
                              seed_state.occupancy) <= RESULT_RTOL
        assert relative_error(state.weights,
                              seed_state.weights) <= RESULT_RTOL
        assert relative_error(state.permanent_v,
                              seed_state.permanent_v) <= RESULT_RTOL
        assert relative_error(state.delta_vth_v(),
                              seed_state.delta_vth_v()) <= RESULT_RTOL
        assert state.time_s == seed_state.time_s

    def test_random_schedule_matches_seed(self):
        state, seed_state = self._pair()
        rng = np.random.default_rng(17)
        for _ in range(60):
            stressing = rng.random(self.N_UNITS) < 0.7
            capture = rng.uniform(0.2, 40.0, self.N_UNITS)
            recovery = rng.uniform(1.0, 2000.0, self.N_UNITS)
            state.step(self.DT_S, stressing, capture, recovery)
            seed_state.step(self.DT_S, stressing, capture, recovery)
        assert state.permanent_v.max() > 0.0, \
            "schedule must exercise the lock-in branch"
        self._compare(state, seed_state)

    def test_cyclic_schedule_hits_kernel_cache(self):
        state, seed_state = self._pair()
        patterns = []
        for shift in range(4):
            stressing = np.ones(self.N_UNITS, dtype=bool)
            stressing[shift * 2:(shift + 1) * 2] = False
            patterns.append((stressing,
                             np.where(stressing, 12.0, 0.0),
                             np.where(stressing, 1.0, 900.0)))
        for epoch in range(48):
            stressing, capture, recovery = patterns[epoch % 4]
            state.step(self.DT_S, stressing, capture, recovery)
            seed_state.step(self.DT_S, stressing, capture, recovery)
        assert state.kernel_cache.misses == 4
        assert state.kernel_cache.hits == 44
        self._compare(state, seed_state)

    def test_all_resting_fleet_only_drains(self):
        state, seed_state = self._pair()
        stressed = np.ones(self.N_UNITS, dtype=bool)
        accel = np.full(self.N_UNITS, 10.0)
        for fleet in (state, seed_state):
            fleet.step(self.DT_S, stressed, accel, accel)
            fleet.step(self.DT_S, ~stressed, accel,
                       np.full(self.N_UNITS, 500.0))
        assert np.all(state.occupancy <= 1.0)
        self._compare(state, seed_state)


class TestFleetEmStepCache:
    """EM rate factors: keyed by content, observable hits, no drift."""

    def _reference(self):
        return SystemSimulator(Chip(2, 2)).em_reference

    def test_repeating_patterns_hit_cache(self):
        reference = self._reference()
        state = FleetEmState(4, reference)
        twin = FleetEmState(4, reference)
        j = reference.current_density_a_m2 * np.array(
            [1.0, 0.6, -0.8, 0.0])
        temp = np.array([350.0, 342.0, 356.0, 330.0])
        for _ in range(20):
            # Fresh arrays with identical content must hit (tobytes
            # keying), and the hit trajectory must equal the twin's.
            state.step(3600.0, j.copy(), temp.copy())
            twin.step(3600.0, j, temp)
        assert state._step_cache.misses == 1
        assert state._step_cache.hits == 19
        assert np.array_equal(state.progress_s, twin.progress_s)
        assert np.array_equal(state.void_reversible_m,
                              twin.void_reversible_m)
        assert np.array_equal(state.void_locked_m, twin.void_locked_m)

    def test_temperature_validation_survives_memoization(self):
        state = FleetEmState(2, self._reference())
        with pytest.raises(SimulationError):
            state.step(3600.0, np.array([1e9, 1e9]),
                       np.array([350.0, -1.0]))


class TestSimulatorEquivalence:
    """Full epoch loop vs the seed's scalar loop (the tentpole)."""

    def test_16_core_500_epochs(self):
        workload = ConstantWorkload(n_cores=16, utilization=0.45)
        policy = RoundRobinRecoveryPolicy(recovery_slots=2,
                                          em_alternate_every=2)
        result = SystemSimulator(Chip(4, 4)).run(
            500, workload, policy)
        reference = SeedSystemSimulator(Chip(4, 4)).run(
            500, workload,
            RoundRobinRecoveryPolicy(recovery_slots=2,
                                     em_alternate_every=2))
        assert result_difference(result, reference) <= RESULT_RTOL

    def test_condition_bundle_cache_is_hit(self):
        simulator = SystemSimulator(Chip(3, 3))
        simulator.run(60, ConstantWorkload(n_cores=9, utilization=0.5),
                      RoundRobinRecoveryPolicy(recovery_slots=1))
        # Round-robin at 9 cores cycles through 9 healing positions
        # times 2 EM polarities (em_alternate_every=2).
        assert simulator._condition_cache.misses <= 18
        assert simulator._condition_cache.hits >= 42
        # Only bundle misses ever reach the thermal cache, and the two
        # EM polarities of a healing position share one power vector.
        thermal = simulator.chip.thermal.steady_cache
        assert thermal.hits + thermal.misses \
            == simulator._condition_cache.misses
        assert thermal.misses <= 9

    def test_lost_demand_fraction_ignores_record_every(self):
        # Demand exceeds the non-healing capacity -> drops every epoch.
        workload = ConstantWorkload(n_cores=9, utilization=1.0)
        results = [
            SystemSimulator(Chip(3, 3)).run(
                48, workload,
                RoundRobinRecoveryPolicy(recovery_slots=2),
                record_every=every)
            for every in (1, 5)]
        assert results[0].lost_demand_fraction > 0.0
        assert results[0].lost_demand_fraction \
            == results[1].lost_demand_fraction
        # 2 of 9 cores heal each epoch; the rest saturate at 1.0.
        assert results[0].lost_demand_fraction \
            == pytest.approx(2.0 / 9.0)

    def test_no_demand_means_no_lost_fraction(self):
        result = SystemSimulator(Chip(2, 2)).run(
            4, ConstantWorkload(n_cores=4, utilization=0.0),
            NoRecoveryPolicy())
        assert result.lost_demand_fraction == 0.0


class TestFloorplanGridNames:
    def test_large_grids_have_unique_names(self):
        floorplan = Floorplan.grid(16, 16)
        names = [block.name for block in floorplan.blocks]
        assert len(names) == 256
        assert len(set(names)) == 256

    def test_small_grid_keeps_historical_names(self):
        floorplan = Floorplan.grid(3, 3)
        assert [block.name for block in floorplan.blocks][:4] \
            == ["core00", "core01", "core02", "core10"]


class TestLifetimeSweep:
    """run_lifetime_sweep: grid fan-out, determinism, accessors."""

    POLICIES = {
        "none": NoRecoveryPolicy(),
        "rr2": RoundRobinRecoveryPolicy(recovery_slots=2,
                                        em_alternate_every=2),
    }
    WORKLOADS = {
        "flat": ConstantWorkload(n_cores=9, utilization=0.6),
        "random": RandomWorkload(n_cores=9, mean_utilization=0.5),
    }
    CHIPS = [ChipConfig(3, 3)]

    def _sweep(self, **kwargs):
        return run_lifetime_sweep(self.POLICIES, self.WORKLOADS,
                                  self.CHIPS, n_epochs=36, seed=7,
                                  **kwargs)

    def test_pool_matches_serial(self):
        serial = self._sweep(max_workers=1)
        pooled = self._sweep(max_workers=2)
        assert pooled.cells == serial.cells

    def test_grid_order_and_accessors(self):
        result = self._sweep(max_workers=1)
        assert len(result) == 4
        assert [cell.policy for cell in result.cells] \
            == ["none", "none", "rr2", "rr2"]
        assert result.cell("rr2", "flat", "3x3").policy == "rr2"
        guardbands = result.column("guardband")
        assert guardbands.shape == (4,)
        assert np.all(guardbands > 0.0)
        # Healing must beat the baseline on its own worst case.
        assert result.best_policy() == "rr2"
        table = result.table()
        assert "policy" in table and "rr2" in table
        with pytest.raises(SimulationError):
            result.column("not_a_column")
        with pytest.raises(KeyError):
            result.cell("rr2", "flat", "9x9")

    def test_policy_factory_receives_the_cell_chip(self):
        seen = []

        def factory(chip):
            seen.append(chip.n_cores)
            return NoRecoveryPolicy()

        result = run_lifetime_sweep(
            {"factory": factory}, {"flat": self.WORKLOADS["flat"]},
            [ChipConfig(2, 2), ChipConfig(3, 3)],
            n_epochs=4, max_workers=1)
        assert len(result) == 2
        assert seen == [4, 9]

    def test_seed_controls_random_workloads(self):
        first = self._sweep(max_workers=1)
        again = self._sweep(max_workers=1)
        differently = run_lifetime_sweep(
            self.POLICIES, self.WORKLOADS, self.CHIPS,
            n_epochs=36, seed=8, max_workers=1)
        assert first.cells == again.cells
        random_cells = [cell for cell in first.cells
                        if cell.workload == "random"]
        changed = [cell for cell, other in
                   zip(random_cells, (c for c in differently.cells
                                      if c.workload == "random"))
                   if cell != other]
        assert changed, "reseeding must reach RandomWorkload cells"

    def test_duplicate_labels_rejected(self):
        with pytest.raises(SimulationError):
            run_lifetime_sweep(
                self.POLICIES, self.WORKLOADS,
                [ChipConfig(3, 3), ChipConfig(3, 3)], n_epochs=2)

    def test_invalid_grid_rejected(self):
        with pytest.raises(SimulationError):
            run_lifetime_sweep({}, self.WORKLOADS, self.CHIPS,
                               n_epochs=2)
        with pytest.raises(SimulationError):
            self._sweep(record_every=0)
