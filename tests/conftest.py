"""Shared fixtures for the test suite.

The Table I calibration is deterministic and moderately expensive
(~0.3 s), so it is computed once per session.  EM tests that need the
full PDE use a coarsened grid via the ``fast_em_config`` fixture --
fidelity studies live in the benchmarks, not the unit tests.
"""

from __future__ import annotations

import pytest

from repro.bti.calibration import BtiCalibration, default_calibration
from repro.em.korhonen import KorhonenConfig
from repro.em.line import EmLineConfig


@pytest.fixture(scope="session")
def calibration() -> BtiCalibration:
    """The library-default Table I calibration (session-cached)."""
    return default_calibration()


@pytest.fixture()
def fast_em_config() -> EmLineConfig:
    """A coarse EM-line configuration for quick PDE tests."""
    return EmLineConfig(
        korhonen=KorhonenConfig(n_nodes=301, max_dt_s=120.0),
        max_step_s=120.0)
