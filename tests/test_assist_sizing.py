"""Tests for repro.assist.sizing (the Fig. 10 sweep)."""

import pytest

from repro.assist.sizing import sweep_load_size


@pytest.fixture(scope="module")
def sweep():
    return sweep_load_size((1, 2, 3, 4, 5))


class TestFig10Sweep:
    def test_one_point_per_requested_size(self, sweep):
        assert [point.n_loads for point in sweep] == [1, 2, 3, 4, 5]

    def test_normalized_to_first_point(self, sweep):
        assert sweep[0].delay_normalized == pytest.approx(1.0)
        assert sweep[0].switching_time_normalized == pytest.approx(1.0)

    def test_delay_grows_monotonically(self, sweep):
        delays = [point.delay_normalized for point in sweep]
        assert all(b > a for a, b in zip(delays, delays[1:]))

    def test_delay_reaches_paper_magnitude(self, sweep):
        """Fig. 10: normalized delay climbs to ~1.8 at 5 loads."""
        assert sweep[-1].delay_normalized == pytest.approx(1.8, abs=0.25)

    def test_delay_growth_is_roughly_linear(self, sweep):
        """Consecutive increments should not explode (linear trend)."""
        delays = [point.delay_normalized for point in sweep]
        increments = [b - a for a, b in zip(delays, delays[1:])]
        assert max(increments) < 3.0 * min(increments)

    def test_swing_shrinks_with_load(self, sweep):
        swings = [point.load_swing_v for point in sweep]
        assert all(b < a for a, b in zip(swings, swings[1:]))

    def test_switching_time_drops_with_load(self, sweep):
        """Fig. 10: switching time reduces with load size..."""
        assert sweep[-1].switching_time_normalized < 0.8

    def test_switching_reduction_is_slower_than_delay_growth(self, sweep):
        """... but at a slower rate than the delay grows."""
        delay_change = sweep[-1].delay_normalized - 1.0
        switching_change = 1.0 - sweep[-1].switching_time_normalized
        assert switching_change < delay_change

    def test_rejects_empty_sweep(self):
        with pytest.raises(ValueError):
            sweep_load_size(())
