"""Tests for repro.pdn (power grid and IR drop)."""

import math

import numpy as np
import pytest

from repro import units
from repro.errors import SimulationError
from repro.pdn.grid import PdnGrid
from repro.pdn.irdrop import solve_ir_drop


def loaded_grid() -> PdnGrid:
    grid = PdnGrid.with_corner_pads(5, 5)
    grid.add_load(2, 2, 0.05)
    return grid


class TestGridConstruction:
    def test_node_count(self):
        assert PdnGrid(4, 6).n_nodes == 24

    def test_segment_count(self):
        # rows*(cols-1) horizontal + cols*(rows-1) vertical segments.
        grid = PdnGrid(3, 4)
        assert len(list(grid.segments())) == 3 * 3 + 4 * 2

    def test_segment_resistance_from_geometry(self):
        grid = PdnGrid(2, 2, pitch_m=100e-6, stripe_width_m=2e-6,
                       stripe_thickness_m=0.5e-6)
        segment = next(grid.segments())
        expected = grid.material.resistivity_ohm_m * 100e-6 \
            / (2e-6 * 0.5e-6)
        assert segment.resistance_ohm == pytest.approx(expected)

    def test_corner_pads(self):
        grid = PdnGrid.with_corner_pads(4, 4)
        assert len(grid.pads) == 4

    def test_uniform_load_totals(self):
        grid = PdnGrid(3, 3)
        grid.add_uniform_load(0.09)
        assert grid.total_load_a() == pytest.approx(0.09)

    def test_rejects_tiny_grid(self):
        with pytest.raises(SimulationError):
            PdnGrid(1, 5)

    def test_rejects_out_of_range_load(self):
        grid = PdnGrid(3, 3)
        with pytest.raises(SimulationError):
            grid.add_load(5, 0, 0.01)

    def test_rejects_negative_load(self):
        grid = PdnGrid(3, 3)
        with pytest.raises(SimulationError):
            grid.add_load(0, 0, -0.01)


class TestIrDrop:
    def test_unloaded_grid_sits_at_supply(self):
        grid = PdnGrid.with_corner_pads(4, 4)
        solution = solve_ir_drop(grid)
        assert np.allclose(solution.node_voltages_v, grid.supply_v)

    def test_loaded_grid_droops(self):
        solution = solve_ir_drop(loaded_grid())
        assert solution.worst_drop_v() > 0.0

    def test_worst_drop_at_load_centre(self):
        grid = loaded_grid()
        solution = solve_ir_drop(grid)
        centre = solution.voltage_at(2, 2)
        assert centre == pytest.approx(
            grid.supply_v - solution.worst_drop_v())

    def test_pads_stay_at_supply(self):
        grid = loaded_grid()
        solution = solve_ir_drop(grid)
        for row, col in grid.pads:
            assert solution.voltage_at(row, col) == pytest.approx(
                grid.supply_v)

    def test_kcl_total_current(self):
        """Current delivered through the pads equals the load."""
        grid = loaded_grid()
        solution = solve_ir_drop(grid)
        # Sum of currents into the load node through its segments.
        into_load = 0.0
        for segment, current in zip(grid.segments(),
                                    solution.segment_currents_a):
            if segment.b == (2, 2):
                into_load += current
            elif segment.a == (2, 2):
                into_load -= current
        assert into_load == pytest.approx(0.05, rel=1e-9)

    def test_floating_grid_rejected(self):
        grid = PdnGrid(3, 3)
        grid.add_load(1, 1, 0.01)
        with pytest.raises(SimulationError):
            solve_ir_drop(grid)

    def test_most_stressed_segments_sorted(self):
        solution = solve_ir_drop(loaded_grid())
        stressed = solution.most_stressed_segments(5)
        densities = [density for _segment, density in stressed]
        assert densities == sorted(densities, reverse=True)

    def test_segment_report_density_consistency(self):
        solution = solve_ir_drop(loaded_grid())
        segment, current, density = solution.segment_report()[0]
        assert density == pytest.approx(
            current / segment.cross_section_m2)

    def test_em_exposure_ranks_by_nucleation_time(self):
        solution = solve_ir_drop(loaded_grid())
        exposure = solution.em_exposure(
            units.celsius_to_kelvin(105.0), count=4)
        times = [t for _segment, t in exposure]
        assert times == sorted(times)
        assert all(t > 0.0 for t in times if not math.isinf(t))

    def test_more_load_means_more_drop(self):
        light = PdnGrid.with_corner_pads(5, 5)
        light.add_load(2, 2, 0.02)
        heavy = PdnGrid.with_corner_pads(5, 5)
        heavy.add_load(2, 2, 0.08)
        assert solve_ir_drop(heavy).worst_drop_v() \
            > solve_ir_drop(light).worst_drop_v()
