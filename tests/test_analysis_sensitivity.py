"""Tests for repro.analysis.sensitivity."""

import pytest

from repro.analysis.sensitivity import (
    SensitivityResult,
    one_at_a_time,
    tornado_rows,
)
from repro.errors import SimulationError


def quadratic(params):
    return params["a"] ** 2 + 10.0 * params["b"]


BASE = {"a": 2.0, "b": 1.0, "c": 5.0}
SPANS = {"a": (1.0, 3.0), "b": (0.5, 1.5)}


class TestOneAtATime:
    def test_one_result_per_spanned_parameter(self):
        results = one_at_a_time(quadratic, BASE, SPANS)
        assert {r.parameter for r in results} == {"a", "b"}

    def test_unspanned_parameters_stay_fixed(self):
        seen = []

        def spy(params):
            seen.append(params["c"])
            return params["a"]

        one_at_a_time(spy, BASE, {"a": (0.0, 1.0)})
        assert all(value == 5.0 for value in seen)

    def test_metric_values_are_exact(self):
        results = {r.parameter: r
                   for r in one_at_a_time(quadratic, BASE, SPANS)}
        a = results["a"]
        assert a.low_metric == pytest.approx(1.0 + 10.0)
        assert a.high_metric == pytest.approx(9.0 + 10.0)
        b = results["b"]
        assert b.low_metric == pytest.approx(4.0 + 5.0)
        assert b.high_metric == pytest.approx(4.0 + 15.0)

    def test_sorted_by_swing(self):
        results = one_at_a_time(quadratic, BASE, SPANS)
        assert results[0].swing >= results[1].swing
        assert results[0].parameter == "b"  # swing 10 vs 8

    def test_baseline_metric_recorded(self):
        results = one_at_a_time(quadratic, BASE, SPANS)
        assert all(r.baseline_metric == pytest.approx(14.0)
                   for r in results)

    def test_relative_swing(self):
        result = SensitivityResult("x", 1.0, 0.0, 2.0, 10.0, 8.0,
                                   12.0)
        assert result.relative_swing == pytest.approx(0.4)

    def test_zero_baseline_relative_swing(self):
        result = SensitivityResult("x", 1.0, 0.0, 2.0, 0.0, -1.0, 1.0)
        assert result.relative_swing == float("inf")


class TestValidation:
    def test_rejects_empty_spans(self):
        with pytest.raises(SimulationError):
            one_at_a_time(quadratic, BASE, {})

    def test_rejects_unknown_parameter(self):
        with pytest.raises(SimulationError):
            one_at_a_time(quadratic, BASE, {"zz": (0.0, 1.0)})

    def test_rejects_inverted_span(self):
        with pytest.raises(SimulationError):
            one_at_a_time(quadratic, BASE, {"a": (3.0, 1.0)})


class TestTornadoRows:
    def test_row_per_result(self):
        results = one_at_a_time(quadratic, BASE, SPANS)
        rows = tornado_rows(results)
        assert len(rows) == 2
        assert all(len(row) == 4 for row in rows)

    def test_rows_contain_percentages(self):
        results = one_at_a_time(quadratic, BASE, SPANS)
        assert all(row[3].endswith("%")
                   for row in tornado_rows(results))
