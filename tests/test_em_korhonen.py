"""Tests for repro.em.korhonen (the stress-evolution PDE solver)."""

import math

import numpy as np
import pytest

from repro.em.korhonen import BoundaryKind, KorhonenConfig, KorhonenSolver
from repro.errors import SimulationError

#: Representative accelerated-test parameters (SI).
KAPPA = 3.5e-14
GRADIENT = 3.5e13
LENGTH = 2.673e-3


@pytest.fixture()
def solver() -> KorhonenSolver:
    return KorhonenSolver(LENGTH, KorhonenConfig(n_nodes=301,
                                                 max_dt_s=60.0))


class TestBasics:
    def test_starts_stress_free(self, solver):
        assert solver.stress_at_start == 0.0
        assert solver.stress_at_end == 0.0

    def test_rejects_bad_length(self):
        with pytest.raises(ValueError):
            KorhonenSolver(0.0)

    def test_rejects_too_few_nodes(self):
        with pytest.raises(ValueError):
            KorhonenConfig(n_nodes=2)

    def test_rejects_negative_duration(self, solver):
        with pytest.raises(SimulationError):
            solver.advance(-1.0, KAPPA, GRADIENT)

    def test_rejects_non_positive_kappa(self, solver):
        with pytest.raises(SimulationError):
            solver.advance(1.0, 0.0, GRADIENT)


class TestBlockedStress:
    def test_tension_builds_at_start(self, solver):
        solver.advance(3600.0, KAPPA, GRADIENT)
        assert solver.stress_at_start > 0.0

    def test_compression_builds_at_end(self, solver):
        solver.advance(3600.0, KAPPA, GRADIENT)
        assert solver.stress_at_end < 0.0

    def test_profile_is_antisymmetric(self, solver):
        solver.advance(3600.0, KAPPA, GRADIENT)
        _x, sigma = solver.profile()
        assert sigma[0] == pytest.approx(-sigma[-1], rel=1e-6)

    def test_mean_stress_is_conserved(self, solver):
        """Blocked ends carry no flux, so total stress integrates to 0."""
        solver.advance(7200.0, KAPPA, GRADIENT)
        scale = abs(solver.stress_at_start)
        assert abs(solver.mean_stress()) < 1e-6 * scale

    def test_reversed_gradient_flips_the_profile(self):
        forward = KorhonenSolver(LENGTH, KorhonenConfig(n_nodes=301))
        reverse = KorhonenSolver(LENGTH, KorhonenConfig(n_nodes=301))
        forward.advance(3600.0, KAPPA, GRADIENT)
        reverse.advance(3600.0, KAPPA, -GRADIENT)
        assert forward.stress_at_start == pytest.approx(
            -reverse.stress_at_start, rel=1e-9)

    def test_matches_semi_infinite_solution_early(self, solver):
        """sigma(0,t) = 2 G sqrt(kappa t / pi) before the far end is felt."""
        time_s = 3600.0
        solver.advance(time_s, KAPPA, GRADIENT)
        analytic = 2.0 * GRADIENT * math.sqrt(KAPPA * time_s / math.pi)
        assert solver.stress_at_start == pytest.approx(analytic, rel=0.05)

    def test_recovery_pulls_stress_back(self, solver):
        solver.advance(3600.0, KAPPA, GRADIENT)
        peak = solver.stress_at_start
        solver.advance(1800.0, KAPPA, -GRADIENT)
        assert solver.stress_at_start < peak

    def test_steady_state_is_linear(self):
        """After many diffusion times the profile is sigma = -G x + c."""
        short = KorhonenSolver(2e-5, KorhonenConfig(n_nodes=101,
                                                    max_dt_s=10.0))
        short.advance(2e5, KAPPA, GRADIENT)
        x, sigma = short.profile()
        slope = np.polyfit(x, sigma, 1)[0]
        assert slope == pytest.approx(-GRADIENT, rel=0.01)


class TestVoidBoundary:
    def test_void_end_is_pinned_to_zero(self, solver):
        solver.advance(3600.0, KAPPA, GRADIENT,
                       start_boundary=BoundaryKind.VOID)
        assert solver.stress_at_start == pytest.approx(0.0, abs=1e-6)

    def test_void_at_far_end(self, solver):
        solver.advance(3600.0, KAPPA, GRADIENT,
                       end_boundary=BoundaryKind.VOID)
        assert solver.stress_at_end == pytest.approx(0.0, abs=1e-6)
        assert solver.stress_at_start > 0.0

    def test_nucleation_relaxes_accumulated_stress(self, solver):
        solver.advance(7200.0, KAPPA, GRADIENT)
        peak = solver.stress_at_start
        solver.advance(600.0, KAPPA, GRADIENT,
                       start_boundary=BoundaryKind.VOID)
        assert solver.stress_at_start < peak


class TestCopyReset:
    def test_copy_is_independent(self, solver):
        solver.advance(3600.0, KAPPA, GRADIENT)
        clone = solver.copy()
        clone.advance(3600.0, KAPPA, GRADIENT)
        assert clone.stress_at_start > solver.stress_at_start

    def test_reset_zeroes_the_field(self, solver):
        solver.advance(3600.0, KAPPA, GRADIENT)
        solver.reset()
        assert solver.stress_at_start == 0.0
        assert solver.time_s == 0.0
