"""Tests for repro.core.compensation (derating / boost vs healing)."""

import pytest

from repro import units
from repro.bti.conditions import BtiStressCondition
from repro.core.compensation import (
    FrequencyDeratingCompensation,
    VddBoostCompensation,
    compare_strategies,
)
from repro.errors import SimulationError

USE_STRESS = BtiStressCondition(
    voltage=0.45, temperature_k=units.celsius_to_kelvin(60.0),
    name="use")


class TestDerating:
    def test_fresh_device_loses_nothing(self):
        comp = FrequencyDeratingCompensation()
        assert comp.throughput_factor(0.0) == pytest.approx(1.0)

    def test_throughput_falls_with_wearout(self):
        comp = FrequencyDeratingCompensation()
        assert comp.throughput_factor(0.05) \
            < comp.throughput_factor(0.01) < 1.0

    def test_power_tracks_frequency(self):
        comp = FrequencyDeratingCompensation()
        assert comp.power_factor(0.03) == pytest.approx(
            comp.throughput_factor(0.03))


class TestVddBoost:
    def test_fresh_device_needs_no_boost(self):
        comp = VddBoostCompensation()
        assert comp.required_supply_v(0.0) == pytest.approx(
            comp.oscillator.supply_v, abs=1e-6)

    def test_boost_grows_with_wearout(self):
        comp = VddBoostCompensation()
        assert comp.required_supply_v(0.05) \
            > comp.required_supply_v(0.02) \
            > comp.oscillator.supply_v

    def test_boost_restores_the_fresh_delay(self):
        comp = VddBoostCompensation()
        shift = 0.04
        boosted = comp.required_supply_v(shift)
        fresh = comp._delay(comp.oscillator.supply_v,
                            comp.oscillator.fresh_vth_v)
        restored = comp._delay(boosted,
                               comp.oscillator.fresh_vth_v + shift)
        assert restored == pytest.approx(fresh, rel=1e-6)

    def test_power_grows_quadratically(self):
        comp = VddBoostCompensation()
        boosted = comp.required_supply_v(0.05)
        assert comp.power_factor(0.05) == pytest.approx(
            (boosted / comp.oscillator.supply_v) ** 2)

    def test_knob_saturates(self):
        comp = VddBoostCompensation(max_boost_v=0.05)
        assert comp.is_saturated(0.2)
        assert comp.required_supply_v(0.2) == pytest.approx(
            comp.oscillator.supply_v + 0.05)

    def test_rejects_negative_shift(self):
        with pytest.raises(SimulationError):
            VddBoostCompensation().required_supply_v(-0.01)


class TestCompareStrategies:
    @pytest.fixture(scope="class")
    def timelines(self):
        return {timeline.name: timeline for timeline in
                compare_strategies(units.years(10.0), USE_STRESS)}

    def test_three_strategies(self, timelines):
        assert set(timelines) == {"derating", "vdd-boost",
                                  "deep-healing"}

    def test_derating_loses_throughput_over_time(self, timelines):
        snapshots = timelines["derating"].snapshots
        assert snapshots[-1].throughput_factor \
            < snapshots[0].throughput_factor < 1.0 + 1e-12

    def test_boost_keeps_throughput_but_pays_power(self, timelines):
        final = timelines["vdd-boost"].final
        assert final.throughput_factor == 1.0
        assert final.power_factor > 1.05

    def test_healing_bounds_the_residual_shift(self, timelines):
        healed = timelines["deep-healing"].final.residual_shift_v
        unhealed = timelines["derating"].final.residual_shift_v
        assert healed < 0.3 * unhealed

    def test_healing_pays_in_downtime(self, timelines):
        # 1h:1h duty -> roughly half the raw throughput.
        assert timelines["deep-healing"].final.throughput_factor \
            == pytest.approx(0.5, abs=0.05)

    def test_mean_throughput_summary(self, timelines):
        timeline = timelines["derating"]
        values = [s.throughput_factor for s in timeline.snapshots]
        assert timeline.mean_throughput() == pytest.approx(
            sum(values) / len(values))

    def test_rejects_bad_arguments(self):
        with pytest.raises(SimulationError):
            compare_strategies(0.0, USE_STRESS)
        with pytest.raises(SimulationError):
            compare_strategies(units.years(1.0), USE_STRESS, n_points=1)
