"""Tests for repro.core.planner (mission-level recovery planning)."""

import pytest

from repro import units
from repro.bti.conditions import (
    BtiRecoveryCondition,
    BtiStressCondition,
    PASSIVE_RECOVERY,
)
from repro.core.planner import RecoveryPlanner
from repro.em.line import EmStressCondition
from repro.errors import ScheduleError

USE_STRESS = BtiStressCondition(
    voltage=0.45, temperature_k=units.celsius_to_kelvin(60.0),
    name="use")
GRID = EmStressCondition(units.ma_per_cm2(6.0),
                         units.celsius_to_kelvin(105.0), name="grid")


@pytest.fixture(scope="module")
def planner(calibration) -> RecoveryPlanner:
    return RecoveryPlanner(calibration)


@pytest.fixture(scope="module")
def plan(planner):
    return planner.plan(units.years(10.0), USE_STRESS, GRID)


class TestPlan:
    def test_stress_interval_respects_lock_deadline(self, planner,
                                                    plan):
        accel = USE_STRESS.capture_acceleration(
            planner.calibration.model_config.reference_stress)
        deadline = planner.balancer.lock_safe_stress_interval_s() \
            / accel
        assert plan.bti_stress_interval_s < deadline

    def test_use_conditions_stretch_the_deadline(self, plan, planner):
        """At a milder stress the allowed operation interval is much
        longer than the accelerated-test 75 minutes."""
        assert plan.bti_stress_interval_s \
            > 2.0 * planner.balancer.lock_safe_stress_interval_s()

    def test_plan_meets_the_availability_floor(self, plan):
        assert plan.availability >= 0.5

    def test_margin_is_reduced(self, plan):
        assert plan.expected_margin < plan.margin_without_plan
        assert plan.margin_reduction > 0.3

    def test_em_pattern_delays_nucleation(self, plan):
        assert plan.em_nucleation_delay > 2.0

    def test_describe_is_complete(self, plan):
        text = plan.describe()
        assert "operate" in text
        assert "margin" in text
        assert "availability" in text


class TestPlannerValidation:
    def test_passive_recovery_cannot_meet_the_floor(self, planner):
        with pytest.raises(ScheduleError):
            planner.plan(units.years(10.0), USE_STRESS, GRID,
                         recovery=PASSIVE_RECOVERY,
                         min_availability=0.9)

    def test_rejects_bad_lifetime(self, planner):
        with pytest.raises(ScheduleError):
            planner.plan(0.0, USE_STRESS, GRID)

    def test_rejects_bad_availability(self, planner):
        with pytest.raises(ScheduleError):
            planner.plan(units.years(1.0), USE_STRESS, GRID,
                         min_availability=1.0)

    def test_bias_alone_cannot_balance(self, planner):
        """Reverse bias without heat is not enough to balance a
        lock-safe operation interval -- the paper's joint-knob message."""
        mild = BtiRecoveryCondition(
            gate_bias_v=-0.3,
            temperature_k=units.celsius_to_kelvin(60.0),
            name="mild healing")
        with pytest.raises(ScheduleError):
            planner.plan(units.years(10.0), USE_STRESS, GRID,
                         recovery=mild, min_availability=0.2)

    def test_hotter_recovery_needs_less_healing_time(self, planner,
                                                     plan):
        hotter = BtiRecoveryCondition(
            gate_bias_v=-0.3,
            temperature_k=units.celsius_to_kelvin(125.0),
            name="hotter healing")
        hot_plan = planner.plan(units.years(10.0), USE_STRESS, GRID,
                                recovery=hotter)
        assert hot_plan.bti_recovery_interval_s \
            <= plan.bti_recovery_interval_s
