"""Heterogeneous-fleet contracts: groups, chunking, dtype, routing.

The fleet engine generalizes from "one chip model, N variated copies"
to true mixed populations (:class:`~repro.system.fleet.FleetGroup`)
while keeping the stacked-tensor advance.  These tests pin the
contracts that generalization rests on:

* a chip in a mixed-workload / mixed-policy fleet matches a standalone
  :class:`~repro.system.simulator.SystemSimulator` built with the same
  variation, phase-shifted workload and a fresh policy copy, exactly;
* results are invariant in how the population is chunked
  (``max_chunk_chips`` / ``state_budget_bytes``), so memory budgets
  are purely an execution concern;
* ``state_dtype=float32`` halves the resident trap state within the
  documented :data:`~repro.system.fleet.FLOAT32_MAX_RELATIVE_ERROR`
  budget and never perturbs the float64 path;
* ``run_lifetime_sweep(engine=...)`` routes compatible grids onto the
  fleet engine bit-compatibly and refuses incompatible ones loudly;
* the row-chunked circuit batches and the wire-chunked EM TTF sampler
  reproduce their unchunked runs bit for bit.
"""

from __future__ import annotations

import copy
import dataclasses

import numpy as np
import pytest

from repro.circuit import Circuit, NMOS_28NM, dc_batch, transient, \
    transient_batch
from repro.circuit.dc import dc_operating_point
from repro.em.korhonen import KorhonenConfig, batch_bytes_per_wire
from repro.em.line import PAPER_EM_STRESS
from repro.em.statistics import sample_nucleation_ttfs_pde
from repro.em.wire import PAPER_TEST_WIRE
from repro.errors import SimulationError
from repro.solvers import cache_counters
from repro.system.chip import Chip
from repro.system.fleet import (
    FLOAT32_MAX_RELATIVE_ERROR,
    FleetGroup,
    FleetVariationSpec,
    run_fleet_lifetime_study,
    state_bytes_per_chip,
)
from repro.system.scheduler import (
    NoRecoveryPolicy,
    RoundRobinRecoveryPolicy,
)
from repro.system.simulator import SystemSimulator
from repro.system.sweeps import ChipConfig, run_lifetime_sweep
from repro.system.workload import (
    ConstantWorkload,
    DiurnalWorkload,
    PhasedWorkload,
    RandomWorkload,
)

N_CORES = 4
# Deliberately not a multiple of the diurnal period, so phase-shifted
# chips end mid-cycle with distinct demand totals.
N_EPOCHS = 26
SEED = 11
SPEC = FleetVariationSpec(capture_sigma=0.05, recovery_sigma=0.08,
                          em_current_sigma=0.05)

RESULT_FIELDS = ("times_s", "worst_degradation", "mean_degradation",
                 "dropped_demand", "final_delta_vth_v",
                 "final_permanent_vth_v", "final_em_drift_ohm",
                 "em_failures", "migration_events", "total_demand",
                 "total_dropped_demand")


def hetero_groups():
    """Fresh templates: two workloads, two policies, mixed phases."""
    return (
        FleetGroup(n_chips=3,
                   workload=DiurnalWorkload(n_cores=N_CORES,
                                            period_epochs=8),
                   policy=RoundRobinRecoveryPolicy(
                       recovery_slots=1, em_alternate_every=2),
                   phases=(0, 2, 2),
                   name="diurnal rr"),
        FleetGroup(n_chips=2,
                   workload=ConstantWorkload(n_cores=N_CORES,
                                             utilization=0.7),
                   policy=NoRecoveryPolicy(),
                   name="flat baseline"),
    )


def chip_plan():
    """(workload, phase, policy) templates per global chip index."""
    plan = []
    for group in hetero_groups():
        for local in range(group.n_chips):
            phase = group.phases[local] if group.phases else 0
            plan.append((group.workload, phase, group.policy))
    return plan


def run_hetero(**overrides):
    kwargs = dict(n_epochs=N_EPOCHS, variation=SPEC, seed=SEED)
    kwargs.update(overrides)
    return run_fleet_lifetime_study((2, 2), groups=hetero_groups(),
                                    **kwargs)


def assert_fleet_results_equal(a, b):
    for field in RESULT_FIELDS:
        assert np.array_equal(np.asarray(getattr(a, field)),
                              np.asarray(getattr(b, field))), field
    assert a.n_epochs == b.n_epochs
    for field in ("capture_scale", "recovery_scale",
                  "em_current_scale"):
        assert np.array_equal(getattr(a.variation, field),
                              getattr(b.variation, field)), field


class TestHeterogeneousFleetVsStandalone:
    """The tentpole acceptance: mixed fleet == standalone, exactly."""

    @pytest.fixture(scope="class")
    def fleet_result(self):
        return run_hetero()

    def test_population_layout(self, fleet_result):
        assert fleet_result.n_chips == 5
        assert fleet_result.final_delta_vth_v.shape == (5, N_CORES)

    def test_each_chip_matches_standalone_simulator(self, fleet_result):
        variation = SPEC.draw(5, SEED)
        for index, (workload, phase, policy) in enumerate(chip_plan()):
            simulator = SystemSimulator(
                Chip(2, 2), variation=variation.chip(index))
            reference = simulator.run(
                N_EPOCHS,
                PhasedWorkload(copy.deepcopy(workload), phase),
                copy.deepcopy(policy))
            chip_view = fleet_result.chip_result(index)
            for field in ("times_s", "worst_degradation",
                          "mean_degradation", "dropped_demand",
                          "final_delta_vth_v",
                          "final_permanent_vth_v",
                          "final_em_drift_ohm"):
                assert np.array_equal(
                    np.asarray(getattr(chip_view, field)),
                    np.asarray(getattr(reference, field))), \
                    (field, index)
            assert np.array_equal(chip_view.em_failures,
                                  reference.em_failures)
            assert chip_view.migration_events \
                == reference.migration_events
            assert chip_view.total_demand == reference.total_demand
            assert chip_view.total_dropped_demand \
                == reference.total_dropped_demand

    def test_phases_actually_shift_the_demand(self, fleet_result):
        # Chips 0 and 1 share workload and policy but differ in
        # phase, so their demand bookkeeping must differ -- otherwise
        # the phase plumbing is dead and the equality above vacuous.
        assert fleet_result.total_demand[0] \
            != fleet_result.total_demand[1]
        # Chips 1 and 2 share the phase too and are distinguished
        # only by their variation draw.
        assert fleet_result.total_demand[1] \
            == fleet_result.total_demand[2]

    def test_groups_see_their_own_policies(self, fleet_result):
        # The round-robin group migrates, the no-recovery group never
        # does -- per-chip migration counts must reflect the split.
        assert np.all(fleet_result.migration_events[:3] > 0)
        assert np.all(fleet_result.migration_events[3:] == 0)


class TestChunkInvariance:
    """Chunked execution is an implementation detail, not a result."""

    @pytest.fixture(scope="class")
    def unchunked(self):
        return run_hetero()

    @pytest.mark.parametrize("max_chunk_chips", [1, 2, 3])
    def test_chunk_size_never_changes_results(self, unchunked,
                                              max_chunk_chips):
        chunked = run_hetero(max_chunk_chips=max_chunk_chips)
        assert_fleet_results_equal(chunked, unchunked)

    def test_state_budget_streams_in_multiple_chunks(self, unchunked):
        per_chip = state_bytes_per_chip(N_CORES)
        before = cache_counters().get("fleet.engine",
                                      {}).get("chunks", 0)
        budgeted = run_hetero(state_budget_bytes=2 * per_chip)
        after = cache_counters()["fleet.engine"]["chunks"]
        # 5 chips at 2 per chunk -> 3 chunks, same numbers.
        assert after - before == 3
        assert_fleet_results_equal(budgeted, unchunked)

    def test_chunk_limits_validated(self):
        with pytest.raises(SimulationError):
            run_hetero(max_chunk_chips=0)
        with pytest.raises(SimulationError):
            run_hetero(state_budget_bytes=0)


class TestFloat32State:
    """Opt-in float32 trap state: documented budget, inert default."""

    @pytest.fixture(scope="class")
    def results(self):
        return (run_hetero(), run_hetero(state_dtype=np.float32))

    @staticmethod
    def relative_error(approx, exact):
        scale = max(float(np.abs(exact).max()), 1e-30)
        return float(np.abs(approx - exact).max()) / scale

    def test_error_within_documented_budget(self, results):
        exact, approx = results
        for field in ("final_delta_vth_v", "final_permanent_vth_v",
                      "worst_degradation", "mean_degradation"):
            err = self.relative_error(
                np.asarray(getattr(approx, field)),
                np.asarray(getattr(exact, field)))
            assert err <= FLOAT32_MAX_RELATIVE_ERROR, (field, err)

    def test_float32_actually_perturbs_the_state(self, results):
        # If the cast were dead the budget test would be vacuous.
        exact, approx = results
        assert not np.array_equal(approx.final_delta_vth_v,
                                  exact.final_delta_vth_v)

    def test_discrete_observables_are_stable(self, results):
        # Scheduling is driven by the float64 upcast of the shift
        # observable; at this horizon the float32 rounding must not
        # flip any discrete decision.
        exact, approx = results
        assert np.array_equal(approx.migration_events,
                              exact.migration_events)
        assert np.array_equal(approx.em_failures, exact.em_failures)
        assert np.array_equal(approx.total_demand, exact.total_demand)

    def test_unsupported_dtype_rejected(self):
        with pytest.raises(SimulationError):
            run_hetero(state_dtype=np.float16)


class TestGroupValidation:
    def test_group_needs_chips(self):
        with pytest.raises(SimulationError):
            FleetGroup(n_chips=0,
                       workload=ConstantWorkload(N_CORES, 0.5),
                       policy=NoRecoveryPolicy())

    def test_phases_must_cover_every_chip(self):
        with pytest.raises(SimulationError):
            FleetGroup(n_chips=3,
                       workload=ConstantWorkload(N_CORES, 0.5),
                       policy=NoRecoveryPolicy(), phases=(0, 1))

    def test_phases_must_be_non_negative(self):
        with pytest.raises(SimulationError):
            FleetGroup(n_chips=2,
                       workload=ConstantWorkload(N_CORES, 0.5),
                       policy=NoRecoveryPolicy(), phases=(0, -1))

    def test_groups_exclusive_with_homogeneous_args(self):
        with pytest.raises(SimulationError):
            run_fleet_lifetime_study(
                (2, 2), groups=hetero_groups(),
                workload=ConstantWorkload(N_CORES, 0.5),
                n_epochs=4)

    def test_n_chips_must_match_groups(self):
        with pytest.raises(SimulationError):
            run_fleet_lifetime_study((2, 2), 7,
                                     groups=hetero_groups(),
                                     n_epochs=4)


class TestSweepEngineRouting:
    """run_lifetime_sweep(engine=...) fleet routing and its guards."""

    N_SWEEP_EPOCHS = 10

    @staticmethod
    def grid():
        return (
            {"rr": RoundRobinRecoveryPolicy(recovery_slots=1,
                                            em_alternate_every=2),
             "none": NoRecoveryPolicy()},
            {"flat": ConstantWorkload(n_cores=N_CORES,
                                      utilization=0.6),
             "diurnal": DiurnalWorkload(n_cores=N_CORES,
                                        period_epochs=8)},
            [ChipConfig(2, 2, name="unit a"),
             ChipConfig(2, 2, name="unit b")],
        )

    def run_grid(self, **kwargs):
        policies, workloads, chips = self.grid()
        return run_lifetime_sweep(policies, workloads, chips,
                                  n_epochs=self.N_SWEEP_EPOCHS,
                                  **kwargs)

    def test_auto_routes_to_fleet_and_matches_pooled(self):
        reports = []
        auto = self.run_grid(on_report=reports.append)
        pooled = self.run_grid(engine="pooled")
        assert len(reports) == 1
        assert reports[0].mode == "fleet"
        assert reports[0].n_tasks == len(auto.cells) == 8
        assert len(auto.cells) == len(pooled.cells)
        for a, b in zip(auto.cells, pooled.cells):
            assert (a.policy, a.workload, a.chip) \
                == (b.policy, b.workload, b.chip)
            for field in ("guardband", "final_delta_vth_v",
                          "final_permanent_vth_v", "em_failures",
                          "migration_events", "migration_overhead",
                          "lost_demand_fraction"):
                assert getattr(a, field) == getattr(b, field), field

    def test_fleet_report_carries_engine_counters(self):
        reports = []
        self.run_grid(engine="fleet", on_report=reports.append)
        counters = reports[0].cache_counters
        assert counters["fleet.engine"]["chips"] == 8
        assert counters["fleet.engine"]["epochs"] \
            == self.N_SWEEP_EPOCHS
        assert "bti.fleet.kernels" in counters

    def test_pool_knobs_force_pooled_path(self):
        for knob in ({"min_tasks_for_pool": 1}, {"retries": 1},
                     {"on_error": "collect"},
                     {"progress": lambda done, total: None}):
            reports = []
            self.run_grid(on_report=reports.append, **knob)
            assert reports[0].mode != "fleet", knob
        with pytest.raises(SimulationError):
            self.run_grid(engine="fleet", retries=1)

    def test_max_workers_stays_on_fleet_path(self):
        # max_workers is no longer a pool knob: it forwards to the
        # fleet engine's chunk executor, and this grid is far below
        # the work gate, so the run stays one serial fleet advance.
        reports = []
        workers = self.run_grid(engine="fleet", max_workers=2,
                                on_report=reports.append)
        assert reports[0].mode == "fleet"
        assert reports[0].n_tasks == len(workers.cells) == 8
        baseline = self.run_grid(engine="fleet")
        for a, b in zip(workers.cells, baseline.cells):
            assert a == b

    def test_mixed_chip_designs_force_pooled_path(self):
        policies, workloads, _ = self.grid()
        with pytest.raises(SimulationError):
            run_lifetime_sweep(policies, workloads, [(2, 2), (2, 3)],
                               n_epochs=self.N_SWEEP_EPOCHS,
                               engine="fleet")
        reports = []
        run_lifetime_sweep(policies, workloads, [(2, 2), (2, 3)],
                           n_epochs=self.N_SWEEP_EPOCHS,
                           on_report=reports.append)
        assert reports[0].mode != "fleet"

    def test_seeded_workloads_force_pooled_path(self):
        policies = {"none": NoRecoveryPolicy()}
        workloads = {"random": RandomWorkload(n_cores=N_CORES)}
        with pytest.raises(SimulationError):
            run_lifetime_sweep(policies, workloads, [(2, 2)],
                               n_epochs=self.N_SWEEP_EPOCHS,
                               engine="fleet", seed=7)

    def test_unknown_engine_rejected(self):
        with pytest.raises(SimulationError):
            self.run_grid(engine="turbo")


def nmos_amplifier(rd_ohms: float, vin_v: float) -> Circuit:
    circuit = Circuit(f"chunk amp rd={rd_ohms:g} vin={vin_v:g}")
    circuit.add_voltage_source("vdd", "vdd", "gnd", 1.0)
    circuit.add_voltage_source("vin", "g", "gnd", vin_v)
    circuit.add_resistor("rd", "vdd", "d", rd_ohms)
    circuit.add_mosfet("m1", "d", "g", "gnd", NMOS_28NM)
    circuit.add_capacitor("cl", "d", "gnd", 10e-15)
    return circuit


AMPLIFIER_GRID = ((20e3, 0.55), (20e3, 0.35), (5e3, 0.8),
                  (40e3, 0.75), (10e3, 0.45))


def amplifier_circuits():
    return [nmos_amplifier(rd, vin) for rd, vin in AMPLIFIER_GRID]


class TestChunkedCircuitBatches:
    """Row-blocked dc/transient batches == their unchunked runs."""

    def test_chunked_dc_is_bitwise(self):
        whole = dc_batch(amplifier_circuits(), condense=False)
        chunked = dc_batch(amplifier_circuits(), condense=False,
                           max_chunk_rows=2)
        assert len(chunked) == len(whole)
        for a, b in zip(chunked, whole):
            assert np.array_equal(a.solution, b.solution)
            assert a.iterations == b.iterations

    def test_budgeted_dc_matches_per_point(self):
        # A budget of two rows' worth of stacked matrices: the batch
        # must stream and still land on every solo operating point.
        chunked = dc_batch(amplifier_circuits(),
                           chunk_budget_bytes=2_000)
        for (rd, vin), solution in zip(AMPLIFIER_GRID, chunked):
            reference = dc_operating_point(nmos_amplifier(rd, vin))
            assert np.max(np.abs(solution.solution
                                 - reference.solution)) <= 1e-12

    def test_chunked_transient_is_bitwise(self):
        whole = transient_batch(amplifier_circuits(), stop_s=8e-9,
                                dt_s=0.4e-9, condense=False)
        chunked = transient_batch(amplifier_circuits(), stop_s=8e-9,
                                  dt_s=0.4e-9, condense=False,
                                  max_chunk_rows=2)
        assert len(chunked) == len(whole)
        for a, b in zip(chunked, whole):
            assert np.array_equal(a.times_s, b.times_s)
            assert np.array_equal(a.solutions, b.solutions)

    def test_chunked_transient_matches_solo_runs(self):
        chunked = transient_batch(amplifier_circuits(), stop_s=8e-9,
                                  dt_s=0.4e-9, condense=False,
                                  max_chunk_rows=3)
        for (rd, vin), result in zip(AMPLIFIER_GRID, chunked):
            reference = transient(nmos_amplifier(rd, vin), 8e-9,
                                  0.4e-9)
            assert np.array_equal(result.solutions,
                                  reference.solutions)

    def test_chunk_limits_validated(self):
        with pytest.raises(ValueError):
            dc_batch(amplifier_circuits(), max_chunk_rows=0)
        with pytest.raises(ValueError):
            transient_batch(amplifier_circuits(), stop_s=8e-9,
                            dt_s=0.4e-9, chunk_budget_bytes=0)


class TestChunkedEmSampler:
    """Wire-chunked PDE TTF sampling == the monolithic batch."""

    CONFIG = KorhonenConfig(n_nodes=101, max_dt_s=5e3)
    KWARGS = dict(
        wire=PAPER_TEST_WIRE,
        condition=dataclasses.replace(
            PAPER_EM_STRESS,
            current_density_a_m2=PAPER_EM_STRESS.current_density_a_m2
            * 0.05),
        j_sigma=0.1, seed=42)

    def sample(self, **overrides):
        kwargs = dict(self.KWARGS, config=self.CONFIG)
        kwargs.update(overrides)
        return sample_nucleation_ttfs_pde(24, 6e6, 2e5, **kwargs)

    def test_wire_chunks_are_bitwise(self):
        whole = self.sample()
        chunked = self.sample(max_chunk_wires=5)
        assert np.array_equal(whole, chunked)
        # The scenario must nucleate and spread, or equality is
        # vacuous.
        finite = np.isfinite(whole)
        assert finite.any()
        assert np.unique(whole[finite]).size > 1

    def test_byte_budget_chunks_are_bitwise(self):
        whole = self.sample()
        budget = 7 * batch_bytes_per_wire(self.CONFIG)
        chunked = self.sample(chunk_budget_bytes=budget)
        assert np.array_equal(whole, chunked)

    def test_chunk_limits_validated(self):
        with pytest.raises(SimulationError):
            self.sample(max_chunk_wires=0)
        with pytest.raises(SimulationError):
            self.sample(chunk_budget_bytes=8)
        with pytest.raises(SimulationError):
            self.sample(engine="serial", max_chunk_wires=5)
