"""Property-based tests for the extension modules.

Invariant coverage for the statistics, variability, Blech and duty
models, mirroring the style of ``test_properties.py``.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import units
from repro.bti.duty import DutyCycledStressModel
from repro.bti.variability import BtiVariabilityModel
from repro.em.blech import critical_length_m, is_immortal, \
    saturation_stress_pa
from repro.em.line import EmStressCondition
from repro.em.statistics import WirePopulationSpec
from repro.em.wire import COPPER, Wire


class TestPopulationProperties:
    @given(n=st.integers(min_value=1, max_value=100000),
           sigma=st.floats(min_value=0.05, max_value=1.0))
    @settings(max_examples=40, deadline=None)
    def test_chip_cdf_dominates_wire_cdf(self, n, sigma):
        spec = WirePopulationSpec(n, units.years(20.0), sigma)
        t = units.years(10.0)
        assert spec.chip_failure_probability(t) \
            >= spec.wire_failure_probability(t) - 1e-12

    @given(fraction=st.floats(min_value=0.001, max_value=0.999))
    @settings(max_examples=30, deadline=None)
    def test_chip_quantile_inverts(self, fraction):
        spec = WirePopulationSpec(500, units.years(20.0), 0.4)
        t = spec.chip_quantile(fraction)
        assert spec.chip_failure_probability(t) == pytest.approx(
            fraction, rel=0.02, abs=1e-4)

    @given(factor=st.floats(min_value=0.1, max_value=100.0))
    @settings(max_examples=30, deadline=None)
    def test_scaling_is_multiplicative(self, factor):
        spec = WirePopulationSpec(500, units.years(20.0), 0.4)
        scaled = spec.scaled(factor)
        assert scaled.chip_quantile(0.5) == pytest.approx(
            factor * spec.chip_quantile(0.5), rel=1e-6)


class TestVariabilityProperties:
    @given(mean=st.floats(min_value=1e-4, max_value=0.2),
           fraction=st.floats(min_value=0.01, max_value=0.99))
    @settings(max_examples=50, deadline=None)
    def test_quantiles_are_ordered_and_non_negative(self, mean,
                                                    fraction):
        model = BtiVariabilityModel()
        low = model.quantile_v(mean, min(fraction, 1.0 - fraction))
        high = model.quantile_v(mean, max(fraction, 1.0 - fraction))
        assert 0.0 <= low <= high

    @given(mean=st.floats(min_value=1e-3, max_value=0.1),
           n=st.integers(min_value=1, max_value=10 ** 9))
    @settings(max_examples=50, deadline=None)
    def test_population_worst_grows_with_n(self, mean, n):
        model = BtiVariabilityModel()
        assert model.worst_of_population_v(mean, n) \
            >= mean - 1e-12 or n == 1


class TestBlechProperties:
    @given(density=st.floats(min_value=1e9, max_value=5e11),
           temp_c=st.floats(min_value=25.0, max_value=300.0))
    @settings(max_examples=40, deadline=None)
    def test_wires_below_critical_length_are_immortal(self, density,
                                                      temp_c):
        temp = units.celsius_to_kelvin(temp_c)
        l_crit = critical_length_m(COPPER, density, temp)
        condition = EmStressCondition(density, temp)
        assert is_immortal(Wire(length_m=0.99 * l_crit), condition)
        assert not is_immortal(Wire(length_m=1.01 * l_crit), condition)

    @given(density=st.floats(min_value=1e9, max_value=5e11),
           length=st.floats(min_value=1e-6, max_value=1e-2))
    @settings(max_examples=40, deadline=None)
    def test_saturation_stress_is_linear_in_both(self, density,
                                                 length):
        temp = units.celsius_to_kelvin(200.0)
        condition = EmStressCondition(density, temp)
        base = saturation_stress_pa(Wire(length_m=length), condition)
        double_l = saturation_stress_pa(Wire(length_m=2.0 * length),
                                        condition)
        assert double_l == pytest.approx(2.0 * base, rel=1e-9)


class TestCircuitPassivity:
    @given(drives=st.lists(st.floats(min_value=0.0, max_value=1.0),
                           min_size=10, max_size=10))
    @settings(max_examples=20, deadline=None)
    def test_assist_nodes_stay_within_the_rails(self, drives):
        """A resistive-MOS network powered from one supply is passive:
        whatever the gate drives, no node leaves [0, VDD]."""
        from repro.assist.circuitry import AssistCircuit
        from repro.assist.modes import DEVICE_NAMES
        from repro.circuit.dc import dc_operating_point

        circuit = AssistCircuit()
        for device, value in zip(DEVICE_NAMES, drives):
            circuit.circuit.find_voltage_source(
                f"vg_{device}").volts = value
        solution = dc_operating_point(circuit.circuit)
        for node, voltage in solution.voltages().items():
            assert -1e-6 <= voltage <= 1.0 + 1e-6, (node, voltage)


class TestDutyProperties:
    @given(duty=st.floats(min_value=0.0, max_value=1.0),
           t=st.floats(min_value=1.0, max_value=1e9))
    @settings(max_examples=50, deadline=None)
    def test_duty_cycled_shift_bounded_by_dc(self, duty, t):
        model = DutyCycledStressModel()
        assert model.shift(t, duty) \
            <= model.stress_model.shift(t) + 1e-15

    @given(a=st.floats(min_value=0.01, max_value=1.0),
           b=st.floats(min_value=0.01, max_value=1.0),
           t=st.floats(min_value=1.0, max_value=1e8))
    @settings(max_examples=50, deadline=None)
    def test_shift_monotone_in_duty(self, a, b, t):
        model = DutyCycledStressModel()
        low, high = sorted((a, b))
        assert model.shift(t, high) >= model.shift(t, low) - 1e-15
