"""Tests for repro.assist.circuitry (the Fig. 8/9 behaviours)."""

import pytest

from repro.assist.circuitry import AssistCircuit, AssistCircuitConfig
from repro.assist.modes import AssistMode
from repro.errors import NetlistError


@pytest.fixture(scope="module")
def circuit() -> AssistCircuit:
    return AssistCircuit()


@pytest.fixture(scope="module")
def operating_points(circuit):
    return {mode: circuit.solve_mode(mode) for mode in AssistMode}


class TestNormalMode:
    def test_load_sees_most_of_the_supply(self, operating_points):
        normal = operating_points[AssistMode.NORMAL]
        assert normal.load_swing_v > 0.8

    def test_grid_currents_flow_forward(self, operating_points):
        normal = operating_points[AssistMode.NORMAL]
        assert normal.vdd_grid_current_a > 0.0
        assert normal.vss_grid_current_a > 0.0

    def test_grid_and_load_currents_agree(self, operating_points):
        """One series path: grid current equals load current."""
        normal = operating_points[AssistMode.NORMAL]
        assert normal.vdd_grid_current_a == pytest.approx(
            normal.load_current_a, rel=1e-3)

    def test_supply_delivers_the_load_current(self, operating_points):
        normal = operating_points[AssistMode.NORMAL]
        assert normal.supply_current_a == pytest.approx(
            normal.load_current_a, rel=0.05)


class TestEmRecoveryMode:
    def test_grid_current_is_reversed(self, operating_points):
        """Fig. 9(a): current direction reverses in EM mode."""
        em = operating_points[AssistMode.EM_RECOVERY]
        assert em.vdd_grid_current_a < 0.0
        assert em.vss_grid_current_a < 0.0

    def test_magnitude_is_preserved(self, operating_points):
        """Fig. 9(a): same absolute current, guaranteed by symmetry."""
        normal = operating_points[AssistMode.NORMAL]
        em = operating_points[AssistMode.EM_RECOVERY]
        assert abs(em.vdd_grid_current_a) == pytest.approx(
            normal.vdd_grid_current_a, rel=1e-6)

    def test_load_still_operates_normally(self, operating_points):
        """The load keeps its polarity and current in EM mode."""
        normal = operating_points[AssistMode.NORMAL]
        em = operating_points[AssistMode.EM_RECOVERY]
        assert em.load_current_a == pytest.approx(
            normal.load_current_a, rel=1e-6)
        assert em.load_swing_v == pytest.approx(
            normal.load_swing_v, rel=1e-6)


class TestBtiRecoveryMode:
    def test_rails_are_swapped(self, operating_points):
        """Fig. 9(b): load VDD and VSS values are switched."""
        bti = operating_points[AssistMode.BTI_RECOVERY]
        assert bti.load_vss_v > bti.load_vdd_v

    def test_paper_voltage_levels(self, operating_points):
        """Fig. 9(b): ~0.816 V on load-VSS, ~0.223 V on load-VDD."""
        bti = operating_points[AssistMode.BTI_RECOVERY]
        assert bti.load_vss_v == pytest.approx(0.816, abs=0.05)
        assert bti.load_vdd_v == pytest.approx(0.223, abs=0.05)

    def test_droop_is_around_200mv(self, operating_points):
        """The paper reports ~0.2-0.3 V of pass-device droop."""
        bti = operating_points[AssistMode.BTI_RECOVERY]
        config = AssistCircuitConfig()
        droop_top = config.supply_v - bti.load_vss_v
        droop_bottom = bti.load_vdd_v
        assert 0.1 < droop_top < 0.3
        assert 0.1 < droop_bottom < 0.3

    def test_reverse_bias_exceeds_the_experiment_level(self,
                                                       operating_points):
        """-0.593 V across the idle load comfortably exceeds the
        -0.3 V the Table I experiments used."""
        bti = operating_points[AssistMode.BTI_RECOVERY]
        assert bti.load_vss_v - bti.load_vdd_v > 0.3

    def test_grids_carry_no_current(self, operating_points):
        bti = operating_points[AssistMode.BTI_RECOVERY]
        assert abs(bti.vdd_grid_current_a) < 1e-6
        assert abs(bti.vss_grid_current_a) < 1e-6


class TestModeSwitching:
    def test_switching_time_is_nanoseconds(self, circuit):
        switching = circuit.switching_time_s(AssistMode.NORMAL,
                                             AssistMode.BTI_RECOVERY)
        assert 1e-9 < switching < 100e-9

    def test_transient_reaches_the_dc_target(self, circuit):
        target = circuit.solve_mode(AssistMode.BTI_RECOVERY)
        result = circuit.mode_switch_transient(
            AssistMode.NORMAL, AssistMode.BTI_RECOVERY,
            stop_s=200e-9, dt_s=0.5e-9)
        assert result.voltage("lvss")[-1] == pytest.approx(
            target.load_vss_v, abs=0.02)
        assert result.voltage("lvdd")[-1] == pytest.approx(
            target.load_vdd_v, abs=0.02)

    def test_set_mode_tracks_state(self, circuit):
        circuit.set_mode(AssistMode.NORMAL)
        assert circuit.mode is AssistMode.NORMAL


class TestAgedAssistCircuit:
    """The assist circuitry itself wears out; its modes must survive."""

    @pytest.fixture()
    def aged(self) -> AssistCircuit:
        circuit = AssistCircuit()
        circuit.age_devices(0.05)
        return circuit

    def test_em_reversal_survives_aging(self, aged):
        normal = aged.solve_mode(AssistMode.NORMAL)
        em = aged.solve_mode(AssistMode.EM_RECOVERY)
        assert em.vdd_grid_current_a < 0.0 < normal.vdd_grid_current_a
        assert abs(em.vdd_grid_current_a) == pytest.approx(
            normal.vdd_grid_current_a, rel=1e-6)

    def test_bti_swap_survives_aging(self, aged):
        bti = aged.solve_mode(AssistMode.BTI_RECOVERY)
        assert bti.load_vss_v - bti.load_vdd_v > 0.3

    def test_aged_circuit_delivers_less_current(self, aged):
        fresh = AssistCircuit().solve_mode(AssistMode.NORMAL)
        worn = aged.solve_mode(AssistMode.NORMAL)
        assert worn.load_current_a < fresh.load_current_a

    def test_rejects_negative_aging(self):
        with pytest.raises(NetlistError):
            AssistCircuit().age_devices(-0.01)


class TestConfigValidation:
    def test_rejects_non_positive_supply(self):
        with pytest.raises(NetlistError):
            AssistCircuitConfig(supply_v=0.0)

    def test_rejects_zero_loads(self):
        with pytest.raises(NetlistError):
            AssistCircuitConfig(n_loads=0)

    def test_rejects_bad_grid_resistance(self):
        with pytest.raises(NetlistError):
            AssistCircuitConfig(grid_resistance_ohm=-1.0)
