"""Parallel chunk execution of the fleet engine.

The chunk executor promises (ISSUE 9 / PR 9):

* **determinism** -- a pooled run merges bitwise-identically to the
  serial chunk stream for every worker count and completion order
  (chunk boundaries come from one ``chunk_tasks`` partition, and
  variation draws are by global chip index);
* **crash safety** -- a worker killed mid-fleet degrades to
  chunk-level serial re-execution with identical results, via
  ``run_sweep``'s recovery machinery;
* **a work-aware serial gate** -- small fleets and single-chunk runs
  never pay pool spawn overhead;
* **aggregated telemetry** -- the ``SweepReport`` sums every worker's
  named-cache counters (``bti.fleet.kernels``, ``fleet.engine``,
  thermal/condition memos), not just the parent's.

Pooled cases force a small pool (``REPRO_SWEEP_TEST_WORKERS``, default
2) and ``min_chunks_for_pool=1`` so the pooled code path runs even on
single-core CI runners; the fault hooks ``_TEST_STAGGER_S`` /
``_TEST_DIE_UNLESS_PID`` are module globals of ``repro.system.fleet``,
inherited by forked workers, mirroring tests/test_sweep_faults.py.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

import repro.system.fleet as fleet_module
from repro.errors import SimulationError
from repro.system.fleet import (
    FleetGroup,
    FleetVariationSpec,
    _FleetSlab,
    _n_records,
    _run_fleet_chunk,
    run_fleet_lifetime_study,
)
from repro.system.scheduler import (
    NoRecoveryPolicy,
    RoundRobinRecoveryPolicy,
)
from repro.system.workload import ConstantWorkload, DiurnalWorkload

#: Worker count of every pooled case; the CI fault-injection job pins
#: it to 2 so small runners still exercise the pool path.
WORKERS = int(os.environ.get("REPRO_SWEEP_TEST_WORKERS", "2"))

N_CORES = 9
N_CHIPS = 14
N_EPOCHS = 5
CHUNK_CHIPS = 4  # -> ceil(14 / 4) = 4 chunks

RESULT_ARRAYS = (
    "times_s", "worst_degradation", "mean_degradation",
    "dropped_demand", "final_delta_vth_v", "final_permanent_vth_v",
    "final_em_drift_ohm", "em_failures", "migration_events",
    "total_demand", "total_dropped_demand")
VARIATION_ARRAYS = ("capture_scale", "recovery_scale",
                    "em_current_scale")


def hetero_groups():
    return (
        FleetGroup(n_chips=8,
                   workload=ConstantWorkload(n_cores=N_CORES,
                                             utilization=0.6),
                   policy=RoundRobinRecoveryPolicy(
                       recovery_slots=3, em_alternate_every=2),
                   phases=(0, 0, 1, 1, 2, 2, 0, 1),
                   name="rotating"),
        FleetGroup(n_chips=6,
                   workload=DiurnalWorkload(n_cores=N_CORES,
                                            period_epochs=4),
                   policy=NoRecoveryPolicy(),
                   name="control"),
    )


def run_study(**overrides):
    kwargs = dict(
        n_epochs=N_EPOCHS, record_every=2,
        variation=FleetVariationSpec(capture_sigma=0.1,
                                     recovery_sigma=0.05,
                                     em_current_sigma=0.1),
        seed=11, max_chunk_chips=CHUNK_CHIPS)
    kwargs.update(overrides)
    return run_fleet_lifetime_study((3, 3), groups=hetero_groups(),
                                    **kwargs)


def assert_bitwise_equal(a, b):
    for field in RESULT_ARRAYS:
        left, right = getattr(a, field), getattr(b, field)
        assert left.dtype == right.dtype, field
        assert np.array_equal(left, right), field
    for field in VARIATION_ARRAYS:
        assert np.array_equal(getattr(a.variation, field),
                              getattr(b.variation, field)), field
    assert a.n_epochs == b.n_epochs


@pytest.fixture()
def serial_baseline():
    return run_study(max_workers=1)


@pytest.fixture()
def no_pool(monkeypatch):
    """Make any pool start-up in run_sweep an immediate failure."""
    import repro.solvers.sweep as sweep_module

    class _Forbidden:
        def __init__(self, *args, **kwargs):
            raise AssertionError(
                "ProcessPoolExecutor must not start here")

    monkeypatch.setattr(sweep_module, "ProcessPoolExecutor",
                        _Forbidden)


# -- determinism -----------------------------------------------------------


class TestParallelDeterminism:
    def test_bitwise_equal_across_worker_counts(self,
                                                serial_baseline):
        for workers in (1, 2, 4):
            reports = []
            pooled = run_study(max_workers=workers,
                               min_chunks_for_pool=1,
                               on_report=reports.append)
            assert_bitwise_equal(serial_baseline, pooled)
            (report,) = reports
            assert report.n_chunks == 4
            if workers == 1:
                assert report.mode == "fleet"
                assert report.serial_reason == "max_workers <= 1"
            else:
                assert report.mode == "fleet+pool"
                assert all(chunk.executed_in == "pool"
                           for chunk in report.chunks)

    def test_out_of_order_completion_bitwise(self, monkeypatch,
                                             serial_baseline):
        # Later chunks finish first: chunk k sleeps proportionally to
        # (n_chunks - 1 - k) inside the worker, so the scatter order
        # reverses while the merged rows must not.
        monkeypatch.setattr(fleet_module, "_TEST_STAGGER_S", 0.05)
        reports = []
        pooled = run_study(max_workers=WORKERS,
                           min_chunks_for_pool=1,
                           on_report=reports.append)
        assert_bitwise_equal(serial_baseline, pooled)
        assert reports[0].mode == "fleet+pool"

    def test_scatter_order_independent_of_chunk_order(
            self, serial_baseline):
        # Drive the slab transport directly, scattering chunks in
        # reverse order in-process: the gathered population must be
        # the serial merge, row for row.
        from repro.solvers.sweep import chunk_tasks
        from repro.system.sweeps import ChipConfig
        slab = _FleetSlab(N_CHIPS, N_CORES, _n_records(N_EPOCHS, 2))
        try:
            tasks = chunk_tasks(N_CHIPS, CHUNK_CHIPS)
            for task in reversed(tasks):
                ack = _run_fleet_chunk(fleet_module._FleetChunkTask(
                    chunk=task, n_chunks=len(tasks),
                    chip=ChipConfig(3, 3),
                    groups=fleet_module._slice_groups(
                        hetero_groups(), task.start, task.stop),
                    n_epochs=N_EPOCHS, epoch_s=3600.0,
                    record_every=2,
                    variation=FleetVariationSpec(
                        capture_sigma=0.1, recovery_sigma=0.05,
                        em_current_sigma=0.1),
                    seed=11, calibration=None, em_reference=None,
                    state_dtype="<f8", slab=slab.handle))
                assert ack == task.index
            gathered = slab.gather(N_EPOCHS)
        finally:
            slab.close()
        assert_bitwise_equal(serial_baseline, gathered)


# -- crash safety ----------------------------------------------------------


class TestWorkerDeathRecovery:
    def test_worker_death_recovers_bitwise(self, monkeypatch,
                                           serial_baseline):
        # Every forked worker kills itself on its first chunk; the
        # parent (whose pid matches) survives, and run_sweep re-runs
        # all chunks serially in-process -- same rows, same bytes.
        monkeypatch.setattr(fleet_module, "_TEST_DIE_UNLESS_PID",
                            os.getpid())
        reports = []
        recovered = run_study(max_workers=WORKERS,
                              min_chunks_for_pool=1,
                              on_report=reports.append)
        assert_bitwise_equal(serial_baseline, recovered)
        (report,) = reports
        assert report.mode == "fleet+pool+serial-fallback"
        assert report.fallback_reasons
        assert any(chunk.executed_in == "serial-fallback"
                   for chunk in report.chunks)

    def test_failed_chunk_reports_before_raise(self, monkeypatch):
        def explode(task):
            raise RuntimeError("chunk lost")

        monkeypatch.setattr(fleet_module, "_run_fleet_chunk",
                            explode)
        reports = []
        from repro.errors import TaskError
        with pytest.raises(TaskError):
            run_study(max_workers=WORKERS, min_chunks_for_pool=1,
                      on_report=reports.append)
        (report,) = reports
        assert not report.ok
        assert report.mode in ("fleet+pool",
                               "fleet+pool+serial-fallback", "fleet")


# -- the serial gate -------------------------------------------------------


class TestSerialGate:
    def test_small_fleet_never_pools(self, no_pool):
        # 14 chips x 9 cores x 5 epochs = 630 core-epochs, far below
        # MIN_CORE_EPOCHS_FOR_POOL: even with workers requested, the
        # stream stays serial and no pool is ever constructed.
        reports = []
        run_study(max_workers=4, on_report=reports.append)
        (report,) = reports
        assert report.mode == "fleet"
        assert "core-epochs below pool threshold" \
            in report.serial_reason

    def test_single_chunk_stays_serial(self, no_pool):
        reports = []
        run_study(max_workers=4, min_chunks_for_pool=1,
                  max_chunk_chips=None, on_report=reports.append)
        (report,) = reports
        assert report.mode == "fleet"
        assert report.serial_reason == "single chunk"
        assert report.n_chunks == 1

    def test_explicit_threshold_respected(self, no_pool):
        reports = []
        run_study(max_workers=4, min_chunks_for_pool=99,
                  on_report=reports.append)
        (report,) = reports
        assert report.mode == "fleet"
        assert "min_chunks_for_pool=99" in report.serial_reason

    def test_serial_report_covers_every_chunk(self):
        reports = []
        run_study(max_workers=1, on_report=reports.append)
        (report,) = reports
        assert report.n_chunks == 4
        assert all(chunk.executed_in == "serial"
                   for chunk in report.chunks)
        assert all(chunk.wall_time_s >= 0.0
                   for chunk in report.chunks)

    def test_invalid_knobs_rejected(self):
        with pytest.raises(SimulationError):
            run_study(max_workers=-1)
        with pytest.raises(SimulationError):
            run_study(retries=-1)
        with pytest.raises(SimulationError):
            run_study(max_workers=4, min_chunks_for_pool=0)


# -- aggregated telemetry --------------------------------------------------


class TestCounterAggregation:
    def test_fleet_counters_sum_across_workers(self):
        reports = []
        run_study(max_workers=WORKERS, min_chunks_for_pool=1,
                  on_report=reports.append)
        counters = reports[0].cache_counters
        engine = counters["fleet.engine"]
        # Worker-side run_groups counters survive the process
        # boundary and sum to the population, and the parent's chunk
        # count is folded in.
        assert engine["chips"] == N_CHIPS
        assert engine["epochs"] == 4 * N_EPOCHS  # per-chunk epochs
        assert engine["chunks"] == 4
        kernels = counters["bti.fleet.kernels"]
        assert kernels["kernel_builds"] >= 4
        assert kernels["dedup_rows_in"] > 0
        assert "fleet.conditions" in counters
        assert "thermal.steady" in counters

    def test_serial_stream_reports_same_counter_names(self):
        reports = []
        run_study(max_workers=1, on_report=reports.append)
        counters = reports[0].cache_counters
        assert counters["fleet.engine"]["chips"] == N_CHIPS
        assert counters["fleet.engine"]["chunks"] == 4
        assert "bti.fleet.kernels" in counters


# -- slab transport --------------------------------------------------------


class TestSlabTransport:
    def test_slab_unavailable_falls_back_to_pickled_results(
            self, monkeypatch, serial_baseline):
        def no_slab(*args, **kwargs):
            raise OSError("no shared memory here")

        monkeypatch.setattr(fleet_module, "_FleetSlab", no_slab)
        pooled = run_study(max_workers=WORKERS,
                           min_chunks_for_pool=1)
        assert_bitwise_equal(serial_baseline, pooled)

    def test_slab_layout_covers_result_fields(self):
        fields = dict(
            (name, (shape, dtype)) for name, shape, dtype
            in fleet_module._slab_fields(N_CHIPS, N_CORES, 3))
        assert fields["worst_degradation"] == ((3, N_CHIPS),
                                               np.float64)
        assert fields["final_delta_vth_v"] == ((N_CHIPS, N_CORES),
                                               np.float64)
        assert fields["em_failures"] == ((N_CHIPS, N_CORES),
                                         np.bool_)
        total = fleet_module._slab_nbytes(N_CHIPS, N_CORES, 3)
        assert total == sum(
            int(np.prod(shape)) * np.dtype(dtype).itemsize
            for shape, dtype in fields.values())

    def test_n_records_matches_recorded_timeline(self):
        result = run_study(max_workers=1, record_every=2)
        assert len(result.times_s) == _n_records(N_EPOCHS, 2)
        result = run_study(max_workers=1, record_every=1)
        assert len(result.times_s) == _n_records(N_EPOCHS, 1)


# -- the resource-tracker patch (legacy attach) ----------------------------


class TestSharedMemoryAttachPatch:
    """Pre-3.13 ``_attach_shared_memory`` fallback.

    Without ``track=False`` the attach must suppress the tracker
    registration of *its own* segment only: a blanket no-op would
    silently drop the registration of any SharedMemory created
    concurrently on another thread and leak that segment, and an
    unserialized install/restore lets two threads clobber each
    other's patch.
    """

    def _legacy(self, monkeypatch, recorded):
        from multiprocessing import resource_tracker, shared_memory

        def recording_register(res_name, rtype, *args, **kwargs):
            recorded.append((res_name, rtype))

        monkeypatch.setattr(resource_tracker, "register",
                            recording_register)

        class LegacySharedMemory:
            """3.12-style attach: no track kwarg, always registers."""

            def __init__(self, name=None, **kwargs):
                if "track" in kwargs:
                    raise TypeError(
                        "__init__() got an unexpected keyword "
                        "argument 'track'")
                # The stdlib registers with the leading-slash
                # spelling; a concurrent allocation on another
                # thread registers too and must NOT be swallowed.
                resource_tracker.register("/" + name,
                                          "shared_memory")
                resource_tracker.register("/psm_other_thread",
                                          "shared_memory")
                self.name = name

        monkeypatch.setattr(shared_memory, "SharedMemory",
                            LegacySharedMemory)
        return recording_register

    def test_suppresses_only_our_registration(self, monkeypatch):
        from multiprocessing import resource_tracker
        recorded = []
        recorder = self._legacy(monkeypatch, recorded)
        segment = fleet_module._attach_shared_memory("psm_ours")
        assert segment.name == "psm_ours"
        # Our segment's registration was swallowed, the concurrent
        # one passed through to the real tracker.
        assert recorded == [("/psm_other_thread", "shared_memory")]
        # And the process-global hook is restored afterwards.
        assert resource_tracker.register is recorder

    def test_concurrent_attaches_restore_the_hook(self, monkeypatch):
        import threading as threading_module
        from multiprocessing import resource_tracker
        recorded = []
        recorder = self._legacy(monkeypatch, recorded)
        barrier = threading_module.Barrier(8)
        errors = []

        def attach(index):
            try:
                barrier.wait(timeout=10)
                fleet_module._attach_shared_memory(f"psm_{index}")
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [threading_module.Thread(target=attach, args=(i,))
                   for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        # Every attach swallowed its own registration and let the
        # concurrent one through; no thread clobbered another's
        # restore, so the original hook survives.
        assert resource_tracker.register is recorder
        assert all(name == "/psm_other_thread" for name, _ in recorded)
        assert len(recorded) == 8


# -- failure telemetry -----------------------------------------------------


class TestFailureTelemetry:
    """A run that dies mid-study must still deliver its report."""

    def test_pool_death_before_report_emits_failed_mode(
            self, monkeypatch):
        # run_sweep raising before producing any report used to leave
        # `inner` empty and on_report never fired -- the telemetry
        # black hole.  The finally block now emits a "fleet+failed"
        # report with the wall time.
        def boom(*args, **kwargs):
            raise RuntimeError("pool exploded before reporting")

        monkeypatch.setattr(fleet_module, "run_sweep", boom)
        reports = []
        with pytest.raises(RuntimeError, match="pool exploded"):
            run_study(max_workers=WORKERS, min_chunks_for_pool=1,
                      on_report=reports.append)
        (report,) = reports
        assert report.mode == "fleet+failed"
        assert report.n_chunks == 4
        assert report.wall_time_s >= 0.0
        assert report.chunks == ()

    def test_serial_chunk_failure_reports_completed_chunks(
            self, monkeypatch):
        real = fleet_module._execute_chunk

        def fail_on_second(built, task):
            if task.chunk.index == 1:
                raise RuntimeError("chunk died")
            return real(built, task)

        monkeypatch.setattr(fleet_module, "_execute_chunk",
                            fail_on_second)
        reports = []
        with pytest.raises(RuntimeError, match="chunk died"):
            run_study(max_workers=1, on_report=reports.append)
        (report,) = reports
        assert report.mode == "fleet+failed"
        # Chunk 0 completed before the failure and is accounted for.
        assert [chunk.index for chunk in report.chunks] == [0]
        assert report.cache_counters["fleet.engine"]["chunks"] == 1
