"""Tests for repro.em.line (the stateful EM line model)."""

import pytest

from repro import units
from repro.em.line import (
    EmLine,
    EmLineConfig,
    EmStressCondition,
    PAPER_EM_RECOVERY,
    PAPER_EM_STRESS,
)
from repro.errors import SimulationError

STRESS_T = PAPER_EM_STRESS.temperature_k


@pytest.fixture()
def line(fast_em_config) -> EmLine:
    return EmLine(config=fast_em_config)


class TestConditions:
    def test_paper_stress_values(self):
        assert PAPER_EM_STRESS.current_density_a_m2 == pytest.approx(
            7.96e10)
        assert PAPER_EM_STRESS.temperature_k == pytest.approx(
            units.celsius_to_kelvin(230.0))

    def test_reversed_flips_current_only(self):
        reverse = PAPER_EM_STRESS.reversed()
        assert reverse.current_density_a_m2 == pytest.approx(
            -PAPER_EM_STRESS.current_density_a_m2)
        assert reverse.temperature_k == PAPER_EM_STRESS.temperature_k

    def test_rejects_bad_temperature(self):
        with pytest.raises(ValueError):
            EmStressCondition(1e10, 0.0)


class TestNucleationPhase:
    def test_fresh_line_has_fresh_resistance(self, line):
        assert line.resistance_ohm(STRESS_T) == pytest.approx(
            line.wire.resistance_at(STRESS_T))

    def test_no_resistance_change_before_nucleation(self, line):
        line.apply(units.minutes(30.0), PAPER_EM_STRESS)
        assert not line.nucleated
        assert line.delta_resistance_ohm() == 0.0

    def test_nucleation_happens_around_two_hours(self, line):
        """The calibrated accelerated test nucleates at ~110 min."""
        t_nuc = line.time_to_nucleation(PAPER_EM_STRESS,
                                        units.minutes(600))
        assert units.minutes(60) < t_nuc < units.minutes(200)

    def test_nucleation_is_much_later_at_lower_stress(self, line):
        gentle = EmStressCondition(units.ma_per_cm2(2.0), STRESS_T)
        t_gentle = line.time_to_nucleation(gentle, units.minutes(600))
        t_hard = line.time_to_nucleation(PAPER_EM_STRESS,
                                         units.minutes(600))
        assert t_gentle > 4.0 * t_hard

    def test_reverse_current_nucleates_the_other_end(self, line):
        line.apply(units.minutes(300.0), PAPER_EM_RECOVERY)
        assert line.void_end.nucleated
        assert not line.void_start.nucleated


class TestVoidGrowth:
    def test_resistance_rises_after_nucleation(self, line):
        line.apply(units.minutes(300.0), PAPER_EM_STRESS)
        assert line.nucleated
        assert line.delta_resistance_ohm() > 0.0

    def test_fig5_magnitude(self, line):
        """~10 h of accelerated stress gains roughly 2 ohm (Fig. 5)."""
        line.apply(units.minutes(600.0), PAPER_EM_STRESS)
        assert 1.0 < line.delta_resistance_ohm() < 3.5

    def test_trace_is_monotone_under_stress(self, line):
        times, resistance = line.apply_trace(
            units.minutes(400.0), PAPER_EM_STRESS, 11)
        assert len(times) == 11
        assert all(b >= a - 1e-9 for a, b in zip(resistance,
                                                 resistance[1:]))

    def test_locking_grows_with_void_age(self, fast_em_config):
        early = EmLine(config=fast_em_config)
        late = EmLine(config=fast_em_config)
        early.apply(units.minutes(200.0), PAPER_EM_STRESS)
        late.apply(units.minutes(700.0), PAPER_EM_STRESS)
        early_fraction = early.locked_void_length_m / \
            early.total_void_length_m
        late_fraction = late.locked_void_length_m / \
            late.total_void_length_m
        assert late_fraction > early_fraction


class TestActiveRecovery:
    def test_recovery_reduces_resistance(self, line):
        line.apply(units.minutes(500.0), PAPER_EM_STRESS)
        worn = line.delta_resistance_ohm()
        line.apply(units.minutes(120.0), PAPER_EM_RECOVERY)
        assert line.delta_resistance_ohm() < worn

    def test_recovery_is_faster_than_wearout(self, line):
        """>75 % of the wearout heals within 1/5 of the stress time."""
        line.apply(units.minutes(600.0), PAPER_EM_STRESS)
        worn = line.delta_resistance_ohm()
        line.apply(units.minutes(120.0), PAPER_EM_RECOVERY)
        recovered = (worn - line.delta_resistance_ohm()) / worn
        assert recovered > 0.70

    def test_permanent_component_survives_extended_recovery(self, line):
        line.apply(units.minutes(600.0), PAPER_EM_STRESS)
        line.apply(units.minutes(480.0), PAPER_EM_RECOVERY)
        # The locked void cannot be refilled.
        assert line.locked_void_length_m > 0.0

    def test_early_recovery_is_nearly_full(self, fast_em_config):
        """Fig. 6: recovery early in the void-growth phase heals fully."""
        line = EmLine(config=fast_em_config)
        line.apply(units.minutes(160.0), PAPER_EM_STRESS)
        worn = line.delta_resistance_ohm()
        assert worn > 0.0
        line.apply(units.minutes(90.0), PAPER_EM_RECOVERY)
        assert line.delta_resistance_ohm() < 0.1 * worn

    def test_prolonged_reverse_current_causes_reverse_em(self,
                                                         fast_em_config):
        """Fig. 6: keeping the reverse current after full recovery
        eventually voids the opposite end."""
        line = EmLine(config=fast_em_config)
        line.apply(units.minutes(160.0), PAPER_EM_STRESS)
        line.apply(units.minutes(400.0), PAPER_EM_RECOVERY)
        assert line.void_end.nucleated


class TestFailure:
    def test_fresh_line_has_not_failed(self, line):
        assert not line.has_failed(STRESS_T)

    def test_time_to_failure_is_finite_under_stress(self, line):
        ttf = line.time_to_failure(PAPER_EM_STRESS, units.minutes(3000),
                                   probe_step_s=units.minutes(10.0))
        assert ttf < units.minutes(3000)

    def test_time_to_failure_inf_when_idle(self, line):
        idle = EmStressCondition(0.0, STRESS_T)
        ttf = line.time_to_failure(idle, units.minutes(100),
                                   probe_step_s=units.minutes(10.0))
        assert ttf == float("inf")

    def test_probe_does_not_mutate(self, line):
        line.time_to_nucleation(PAPER_EM_STRESS, units.minutes(300))
        assert not line.nucleated
        assert line.time_s == 0.0


class TestConfigValidation:
    def test_rejects_boost_below_one(self):
        with pytest.raises(ValueError):
            EmLineConfig(recovery_boost=0.5)

    def test_rejects_negative_lock_rate(self):
        with pytest.raises(ValueError):
            EmLineConfig(lock_rate_per_s=-1.0)

    def test_rejects_negative_duration(self, line):
        with pytest.raises(SimulationError):
            line.apply(-1.0, PAPER_EM_STRESS)

    def test_copy_is_independent(self, line):
        line.apply(units.minutes(200.0), PAPER_EM_STRESS)
        clone = line.copy()
        clone.apply(units.minutes(300.0), PAPER_EM_STRESS)
        assert clone.delta_resistance_ohm() > line.delta_resistance_ohm()

    def test_reset_restores_fresh(self, line):
        line.apply(units.minutes(300.0), PAPER_EM_STRESS)
        line.reset()
        assert not line.nucleated
        assert line.delta_resistance_ohm() == 0.0
