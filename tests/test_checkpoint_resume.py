"""Kill-and-resume fault injection for checkpointed fleet studies.

The hard invariant of ISSUE 10: a fleet run interrupted at *any*
epoch -- in-process exception, SIGKILL of the whole run including its
pool workers, or death of individual workers -- and resumed from its
``checkpoint_dir`` produces a merged ``FleetResult`` bitwise-equal to
the uninterrupted run, for serial resume and ``max_workers in
{2, 4}`` alike.

The SIGKILL case runs the study in a real subprocess (its own session
group, so ``killpg`` also reaps forked pool workers), polls the
checkpoint directory for the first mid-lifetime progress snapshot and
then kills the group -- the interrupt lands at an uncontrolled point
*inside* an epoch advance, which is exactly what the atomic
write-then-rename discipline must survive.  The worker-death case
reuses the ``_TEST_DIE_UNLESS_PID`` hook from
tests/test_fleet_parallel.py with checkpointing enabled.
"""

from __future__ import annotations

import os
import shutil
import signal
import subprocess
import sys
import textwrap
import time

import numpy as np
import pytest

import repro.system.checkpoint as checkpoint_module
import repro.system.fleet as fleet_module
from repro.system.checkpoint import resume_fleet_lifetime_study
from repro.system.fleet import (
    FleetVariationSpec,
    run_fleet_lifetime_study,
)
from repro.system.scheduler import RoundRobinRecoveryPolicy
from repro.system.workload import RandomWorkload

#: Worker count of every pooled case; the CI fault-injection job pins
#: it to 2 so small runners still exercise the pool path.
WORKERS = int(os.environ.get("REPRO_SWEEP_TEST_WORKERS", "2"))

N_CHIPS = 8
N_EPOCHS = 6
CHUNK_CHIPS = 3  # -> 3 chunks

RESULT_ARRAYS = (
    "times_s", "worst_degradation", "mean_degradation",
    "dropped_demand", "final_delta_vth_v", "final_permanent_vth_v",
    "final_em_drift_ohm", "em_failures", "migration_events",
    "total_demand", "total_dropped_demand")


def study_kwargs():
    # Stateful templates on purpose: the workload's AR(1) stream and
    # the policy's rotation cursor are part of the resumable state.
    return dict(
        n_chips=N_CHIPS,
        workload=RandomWorkload(n_cores=4, seed=3),
        policy=RoundRobinRecoveryPolicy(recovery_slots=1),
        n_epochs=N_EPOCHS, record_every=2,
        variation=FleetVariationSpec(capture_sigma=0.1,
                                     recovery_sigma=0.05,
                                     em_current_sigma=0.1),
        seed=7, max_chunk_chips=CHUNK_CHIPS)


def run_study(**overrides):
    kwargs = study_kwargs()
    kwargs.update(overrides)
    return run_fleet_lifetime_study((2, 2), **kwargs)


def assert_bitwise_equal(a, b):
    for field in RESULT_ARRAYS:
        left, right = getattr(a, field), getattr(b, field)
        assert left.dtype == right.dtype, field
        assert np.array_equal(left, right), field
    assert a.n_epochs == b.n_epochs


@pytest.fixture(scope="module")
def baseline():
    return run_study(max_workers=0)


class _InterruptAfter(Exception):
    """Raised by the wrapped progress hook to cut a run short."""


# -- in-process interrupts --------------------------------------------------


class TestInProcessInterrupt:
    def _interrupted_directory(self, directory, monkeypatch,
                               n_saves):
        """Run until the ``n_saves``-th progress snapshot, then die."""
        real = checkpoint_module.save_chunk_progress
        saves = []

        def interrupting(ckpt, index, run):
            real(ckpt, index, run)
            saves.append((index, run.epoch))
            if len(saves) >= n_saves:
                raise _InterruptAfter()

        monkeypatch.setattr(checkpoint_module, "save_chunk_progress",
                            interrupting)
        with pytest.raises(_InterruptAfter):
            run_study(max_workers=0, checkpoint_dir=directory,
                      checkpoint_every=2)
        monkeypatch.undo()
        return saves

    @pytest.mark.parametrize("n_saves", [1, 2])
    def test_interrupt_then_serial_resume_is_bitwise(
            self, tmp_path, monkeypatch, baseline, n_saves):
        directory = tmp_path / "ckpt"
        saves = self._interrupted_directory(directory, monkeypatch,
                                            n_saves)
        # The run died mid-lifetime with a progress snapshot on disk.
        index, epoch = saves[-1]
        assert 0 < epoch < N_EPOCHS
        assert (directory
                / f"chunk-{index:05d}.progress.npz").exists()
        resumed = run_study(max_workers=0, checkpoint_dir=directory,
                            checkpoint_every=2)
        assert_bitwise_equal(baseline, resumed)

    @pytest.mark.parametrize("workers", [2, 4])
    def test_interrupt_then_pooled_resume_is_bitwise(
            self, tmp_path, monkeypatch, baseline, workers):
        directory = tmp_path / "ckpt"
        self._interrupted_directory(directory, monkeypatch, 1)
        resumed = run_study(max_workers=workers,
                            min_chunks_for_pool=1,
                            checkpoint_dir=directory,
                            checkpoint_every=2)
        assert_bitwise_equal(baseline, resumed)

    def test_progress_snapshot_is_consumed_not_recomputed(
            self, tmp_path, monkeypatch, baseline):
        directory = tmp_path / "ckpt"
        self._interrupted_directory(directory, monkeypatch, 1)
        resumes = []
        real = checkpoint_module.resume_chunk_run

        def spying(ckpt, index, run):
            restored = real(ckpt, index, run)
            resumes.append((index, run.epoch, restored))
            return restored

        monkeypatch.setattr(checkpoint_module, "resume_chunk_run",
                            spying)
        resumed = run_study(max_workers=0, checkpoint_dir=directory,
                            checkpoint_every=2)
        assert_bitwise_equal(baseline, resumed)
        # Chunk 0 fast-forwarded to its snapshot epoch instead of
        # starting over; the untouched chunks started from 0.
        assert resumes[0] == (0, 2, True)
        assert all(not restored for _, _, restored in resumes[1:])


# -- SIGKILL of the whole run (pool workers included) -----------------------


_KILL_SCRIPT = textwrap.dedent("""
    import sys
    sys.path.insert(0, {src!r})
    import repro.system.fleet as fleet
    fleet._TEST_EPOCH_SLEEP_S = 0.15  # inherited by forked workers
    from repro.system.fleet import (FleetVariationSpec,
                                    run_fleet_lifetime_study)
    from repro.system.scheduler import RoundRobinRecoveryPolicy
    from repro.system.workload import RandomWorkload
    run_fleet_lifetime_study(
        (2, 2), n_chips={n_chips}, checkpoint_dir={directory!r},
        workload=RandomWorkload(n_cores=4, seed=3),
        policy=RoundRobinRecoveryPolicy(recovery_slots=1),
        n_epochs={n_epochs}, record_every=2,
        variation=FleetVariationSpec(capture_sigma=0.1,
                                     recovery_sigma=0.05,
                                     em_current_sigma=0.1),
        seed=7, max_chunk_chips={chunk_chips},
        checkpoint_every=1, max_workers={workers},
        min_chunks_for_pool=1)
""")


class TestSigkillResume:
    def _killed_directory(self, directory, workers):
        """A checkpoint dir of a study SIGKILLed mid-lifetime."""
        src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "src")
        script = _KILL_SCRIPT.format(
            src=src, directory=str(directory), n_chips=N_CHIPS,
            n_epochs=N_EPOCHS, chunk_chips=CHUNK_CHIPS,
            workers=workers)
        child = subprocess.Popen(
            [sys.executable, "-c", script],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            start_new_session=True)
        try:
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                if any(name.endswith(".progress.npz")
                       for name in os.listdir(directory)
                       if os.path.isdir(directory)):
                    break
                if child.poll() is not None:
                    out, err = child.communicate()
                    pytest.fail(
                        "study finished before it could be killed "
                        f"(rc={child.returncode}):\n"
                        f"{err.decode(errors='replace')}")
                time.sleep(0.05)
            else:
                pytest.fail("no progress snapshot appeared in time")
            # Land the kill at an uncontrolled point inside an epoch
            # advance, pool workers included (whole session group).
            time.sleep(0.2)
            os.killpg(child.pid, signal.SIGKILL)
            child.wait(timeout=30)
        finally:
            if child.poll() is None:  # pragma: no cover
                os.killpg(child.pid, signal.SIGKILL)
                child.wait(timeout=30)
        assert child.returncode == -signal.SIGKILL
        assert any(name.endswith(".progress.npz")
                   for name in os.listdir(directory))

    def test_sigkilled_pooled_run_resumes_bitwise(self, tmp_path,
                                                  baseline):
        killed = tmp_path / "killed"
        os.makedirs(killed)
        self._killed_directory(killed, workers=WORKERS)
        # Resume the same interrupted state under every execution
        # shape the acceptance criteria name -- serial and pooled --
        # from identical copies of the killed directory.
        for label, kwargs in (
                ("serial", dict(max_workers=0)),
                ("pool2", dict(max_workers=2,
                               min_chunks_for_pool=1)),
                ("pool4", dict(max_workers=4,
                               min_chunks_for_pool=1))):
            directory = tmp_path / f"resume-{label}"
            shutil.copytree(killed, directory)
            resumed = resume_fleet_lifetime_study(directory, **kwargs)
            assert_bitwise_equal(baseline, resumed)

    def test_sigkilled_serial_run_resumes_bitwise(self, tmp_path,
                                                  baseline):
        killed = tmp_path / "killed"
        os.makedirs(killed)
        self._killed_directory(killed, workers=0)
        resumed = resume_fleet_lifetime_study(killed, max_workers=0)
        assert_bitwise_equal(baseline, resumed)


# -- worker death with checkpointing enabled --------------------------------


class TestWorkerDeathWithCheckpoint:
    def test_worker_death_recovers_and_persists(self, tmp_path,
                                                monkeypatch,
                                                baseline):
        # Every forked worker kills itself; run_sweep's serial
        # fallback completes the chunks in-process, and the completed
        # chunks still land in the checkpoint directory.
        monkeypatch.setattr(fleet_module, "_TEST_DIE_UNLESS_PID",
                            os.getpid())
        directory = tmp_path / "ckpt"
        reports = []
        recovered = run_study(max_workers=WORKERS,
                              min_chunks_for_pool=1,
                              checkpoint_dir=directory,
                              checkpoint_every=2,
                              on_report=reports.append)
        assert_bitwise_equal(baseline, recovered)
        assert reports[0].mode == "fleet+pool+serial-fallback"
        monkeypatch.undo()
        # The post-crash directory is complete: a rerun is all-cached.
        reports2 = []
        again = run_study(max_workers=WORKERS, min_chunks_for_pool=1,
                          checkpoint_dir=directory,
                          checkpoint_every=2,
                          on_report=reports2.append)
        assert_bitwise_equal(baseline, again)
        assert all(chunk.executed_in == "cached"
                   for chunk in reports2[0].chunks)
        assert reports2[0].serial_reason == \
            "every chunk restored from checkpoint"
