"""Tests for repro.system.chip and repro.system.workload."""

import pytest

from repro.errors import SimulationError
from repro.system.chip import Chip, CoreSpec
from repro.system.workload import (
    ConstantWorkload,
    DiurnalWorkload,
    RandomWorkload,
    TraceWorkload,
)


class TestCoreSpec:
    def test_power_interpolates_with_utilization(self):
        core = CoreSpec(active_power_w=2.0, idle_power_w=0.2)
        assert core.power_w(0.0) == pytest.approx(0.2)
        assert core.power_w(1.0) == pytest.approx(2.0)
        assert core.power_w(0.5) == pytest.approx(1.1)

    def test_rejects_out_of_range_utilization(self):
        with pytest.raises(SimulationError):
            CoreSpec().power_w(1.5)

    def test_rejects_idle_above_active(self):
        with pytest.raises(SimulationError):
            CoreSpec(active_power_w=1.0, idle_power_w=2.0)


class TestChip:
    def test_core_count(self):
        assert Chip(4, 4).n_cores == 16

    def test_core_names_match_floorplan(self):
        chip = Chip(2, 2)
        assert chip.core_names == ["core00", "core01", "core10",
                                   "core11"]

    def test_neighbours(self):
        chip = Chip(3, 3)
        centre = chip.floorplan.index_of("core11")
        assert len(chip.neighbours_of(centre)) == 4
        corner = chip.floorplan.index_of("core00")
        assert len(chip.neighbours_of(corner)) == 2

    def test_rejects_empty_chip(self):
        with pytest.raises(SimulationError):
            Chip(0, 4)


class TestWorkloads:
    def test_constant_demand(self):
        workload = ConstantWorkload(n_cores=8, utilization=0.5)
        assert workload.demand(0) == pytest.approx(4.0)
        assert workload.demand(100) == pytest.approx(4.0)

    def test_constant_validation(self):
        with pytest.raises(SimulationError):
            ConstantWorkload(n_cores=8, utilization=1.5)

    def test_random_is_reproducible(self):
        a = RandomWorkload(n_cores=8, seed=3)
        b = RandomWorkload(n_cores=8, seed=3)
        assert [a.demand(e) for e in range(10)] \
            == [b.demand(e) for e in range(10)]

    def test_random_stays_in_range(self):
        workload = RandomWorkload(n_cores=8, volatility=0.5, seed=1)
        for epoch in range(200):
            demand = workload.demand(epoch)
            assert 0.0 <= demand <= 8.0

    def test_random_rejects_rewind(self):
        workload = RandomWorkload(n_cores=8)
        workload.demand(5)
        with pytest.raises(SimulationError):
            workload.demand(2)

    def test_random_same_epoch_is_stable(self):
        workload = RandomWorkload(n_cores=8, seed=2)
        first = workload.demand(4)
        assert workload.demand(4) == first

    def test_diurnal_cycles(self):
        workload = DiurnalWorkload(n_cores=8, peak_utilization=0.9,
                                   trough_utilization=0.1,
                                   period_epochs=24)
        trough = workload.demand(0)
        peak = workload.demand(12)
        assert peak > trough
        assert workload.demand(24) == pytest.approx(trough)

    def test_diurnal_bounds(self):
        workload = DiurnalWorkload(n_cores=8, peak_utilization=0.9,
                                   trough_utilization=0.1,
                                   period_epochs=24)
        for epoch in range(48):
            demand = workload.demand(epoch)
            assert 0.8 - 1e-9 <= demand <= 7.2 + 1e-9

    def test_diurnal_validation(self):
        with pytest.raises(SimulationError):
            DiurnalWorkload(n_cores=8, peak_utilization=0.2,
                            trough_utilization=0.5)

    def test_trace_replays_values(self):
        workload = TraceWorkload.from_sequence(4, [0.1, 0.5, 0.9])
        assert workload.demand(0) == pytest.approx(0.4)
        assert workload.demand(1) == pytest.approx(2.0)
        assert workload.demand(2) == pytest.approx(3.6)

    def test_trace_wraps_around(self):
        workload = TraceWorkload.from_sequence(4, [0.1, 0.5])
        assert workload.demand(2) == workload.demand(0)
        assert workload.demand(7) == workload.demand(1)

    def test_trace_validation(self):
        with pytest.raises(SimulationError):
            TraceWorkload.from_sequence(4, [])
        with pytest.raises(SimulationError):
            TraceWorkload.from_sequence(4, [0.5, 1.5])
