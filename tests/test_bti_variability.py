"""Tests for repro.bti.variability (stochastic BTI)."""

import numpy as np
import pytest

from repro.bti.variability import BtiVariabilityModel, \
    margin_amplification
from repro.errors import SimulationError


@pytest.fixture()
def model() -> BtiVariabilityModel:
    return BtiVariabilityModel(per_trap_impact_v=2e-3)


class TestMoments:
    def test_trap_count_from_mean(self, model):
        assert model.mean_trap_count(0.020) == pytest.approx(10.0)

    def test_std_follows_sqrt_law(self, model):
        small = model.std_v(0.010)
        large = model.std_v(0.040)
        assert large == pytest.approx(2.0 * small, rel=1e-9)

    def test_std_known_value(self, model):
        # N = 10 traps: std = sqrt(2 * 10) * eta.
        assert model.std_v(0.020) == pytest.approx(
            np.sqrt(20.0) * 2e-3)

    def test_quantile_brackets_mean(self, model):
        mean = 0.03
        assert model.quantile_v(mean, 0.05) < mean \
            < model.quantile_v(mean, 0.95)

    def test_quantile_never_negative(self, model):
        assert model.quantile_v(0.001, 0.001) >= 0.0


class TestPopulation:
    def test_worst_of_one_is_the_mean(self, model):
        assert model.worst_of_population_v(0.02, 1) == 0.02

    def test_worst_grows_with_population(self, model):
        small = model.worst_of_population_v(0.02, 100)
        large = model.worst_of_population_v(0.02, 1_000_000)
        assert 0.02 < small < large

    def test_monte_carlo_matches_moments(self, model):
        rng = np.random.default_rng(3)
        samples = model.sample(0.03, 200_000, rng)
        assert samples.mean() == pytest.approx(0.03, rel=0.02)
        assert samples.std() == pytest.approx(model.std_v(0.03),
                                              rel=0.05)

    def test_sampling_reproducible(self, model):
        a = model.sample(0.02, 100, np.random.default_rng(5))
        b = model.sample(0.02, 100, np.random.default_rng(5))
        assert np.allclose(a, b)

    def test_samples_non_negative(self, model):
        samples = model.sample(0.005, 10_000,
                               np.random.default_rng(1))
        assert np.all(samples >= 0.0)


class TestMarginAmplification:
    def test_amplification_exceeds_one(self, model):
        assert margin_amplification(model, 0.02, 10_000) > 1.0

    def test_small_means_amplify_more(self, model):
        """The stochastic part dominates small shifts -- the
        near-threshold sensitivity argument."""
        small_mean = margin_amplification(model, 0.005, 10_000)
        large_mean = margin_amplification(model, 0.050, 10_000)
        assert small_mean > large_mean

    def test_healing_reduces_the_absolute_margin(self, model):
        """Deep healing shrinks the mean; the population margin
        shrinks with it even though the relative amplification grows."""
        unhealed = model.population_margin_v(0.030, 100_000)
        healed = model.population_margin_v(0.004, 100_000)
        assert healed < unhealed

    def test_rejects_zero_mean(self, model):
        with pytest.raises(SimulationError):
            margin_amplification(model, 0.0, 100)

    def test_rejects_bad_population(self, model):
        with pytest.raises(SimulationError):
            model.worst_of_population_v(0.02, 0)


class TestValidation:
    def test_rejects_bad_impact(self):
        with pytest.raises(SimulationError):
            BtiVariabilityModel(per_trap_impact_v=0.0)

    def test_rejects_negative_mean(self, model):
        with pytest.raises(SimulationError):
            model.mean_trap_count(-0.01)
