"""Tests for repro.bti.model (the user-facing BTI model)."""

import numpy as np
import pytest

from repro import units
from repro.bti.conditions import (
    ACTIVE_ACCELERATED_RECOVERY,
    PASSIVE_RECOVERY,
)
from repro.bti.model import BtiModel


@pytest.fixture()
def model(calibration) -> BtiModel:
    return calibration.build_model()


class TestPhases:
    def test_stress_phase_records_history(self, model):
        result = model.apply_stress(units.hours(1.0))
        assert result.kind == "stress"
        assert result.vth_after_v > result.vth_before_v
        assert model.history[-1] is result

    def test_recovery_phase_records_history(self, model):
        model.apply_stress(units.hours(1.0))
        result = model.apply_recovery(units.hours(1.0),
                                      ACTIVE_ACCELERATED_RECOVERY)
        assert result.kind == "recovery"
        assert result.vth_after_v < result.vth_before_v
        assert result.delta_v < 0.0

    def test_elapsed_accumulates(self, model):
        model.apply_stress(units.hours(2.0))
        model.apply_recovery(units.hours(1.0))
        assert model.elapsed_s == pytest.approx(units.hours(3.0))

    def test_permanent_fraction_tracks_population(self, model):
        model.apply_stress(units.hours(24.0))
        assert 0.0 < model.permanent_fraction < 1.0
        assert model.delta_vth_v == pytest.approx(
            model.recoverable_vth_v + model.permanent_vth_v)


class TestTraces:
    def test_stress_trace_is_monotone(self, model):
        times, shifts = model.stress_trace(units.hours(4.0), 9)
        assert len(times) == len(shifts) == 9
        assert np.all(np.diff(shifts) >= -1e-15)

    def test_recovery_trace_is_non_increasing(self, model):
        model.apply_stress(units.hours(4.0))
        _times, shifts = model.recovery_trace(
            units.hours(2.0), 9, ACTIVE_ACCELERATED_RECOVERY)
        assert np.all(np.diff(shifts) <= 1e-15)

    def test_trace_requires_two_points(self, model):
        with pytest.raises(ValueError):
            model.stress_trace(units.hours(1.0), 1)

    def test_trace_time_axis_is_relative(self, model):
        model.apply_stress(units.hours(5.0))
        times, _ = model.stress_trace(units.hours(1.0), 3)
        assert times[0] == 0.0
        assert times[-1] == pytest.approx(units.hours(1.0))


class TestConvenience:
    def test_recovery_fraction_does_not_mutate(self, model):
        fraction = model.recovery_fraction_after(
            units.hours(24.0), units.hours(6.0),
            ACTIVE_ACCELERATED_RECOVERY)
        assert 0.0 < fraction < 1.0
        assert model.delta_vth_v == 0.0
        assert model.history == []

    def test_passive_fraction_is_small(self, model):
        fraction = model.recovery_fraction_after(
            units.hours(24.0), units.hours(6.0), PASSIVE_RECOVERY)
        assert fraction < 0.05

    def test_copy_is_deep(self, model):
        model.apply_stress(units.hours(1.0))
        clone = model.copy()
        clone.apply_stress(units.hours(4.0))
        assert clone.delta_vth_v > model.delta_vth_v
        assert len(clone.history) == len(model.history) + 1

    def test_reset_clears_everything(self, model):
        model.apply_stress(units.hours(1.0))
        model.reset()
        assert model.delta_vth_v == 0.0
        assert model.history == []
