"""Equivalence and property tests for the SoA fleet engine.

The fleet engine advances a whole population of chips as stacked
arrays (:mod:`repro.system.fleet` over
:mod:`repro.bti.fleet`).  These tests pin the contract that makes it
safe to replace the pooled per-cell path for homogeneous populations:

* a fleet chip's full trajectory matches a standalone
  :class:`~repro.system.simulator.SystemSimulator` built with the same
  :class:`~repro.system.simulator.ChipVariation` to <= 1e-10 on every
  ``SystemResult`` field (in practice bit-exact), including through
  BTI/EM recovery intervals and across sub-step-count groups;
* the stacked trap kernels match per-chip
  :class:`~repro.system.aging.FleetBtiState` advances exactly;
* variation draws are per-chip deterministic and independent of the
  population size;
* the batched EM statistics samplers agree with the existing
  weakest-link paths;
* the work-aware serial gates keep sub-threshold sweeps off the pool.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.assist.sweeps import ring_oscillator_fleet
from repro.em.statistics import (
    WirePopulationSpec,
    sample_mixed_population_ttfs,
    sample_population_ttf_matrix,
    sample_population_ttfs,
)
from repro.bti.fleet import StackedTrapPopulations
from repro.errors import SimulationError
from repro.system.aging import FleetBtiState, FleetEmState
from repro.system.chip import Chip
from repro.system.fleet import (
    FleetSimulator,
    FleetVariation,
    FleetVariationSpec,
    run_fleet_lifetime_study,
)
from repro.system.scheduler import (
    NoRecoveryPolicy,
    RoundRobinRecoveryPolicy,
)
from repro.system.simulator import ChipVariation, SystemSimulator
from repro.system.sweeps import ChipConfig, run_lifetime_sweep
from repro.system.workload import ConstantWorkload

RESULT_TOLERANCE = 1e-10

ARRAY_FIELDS = ("times_s", "worst_degradation", "mean_degradation",
                "dropped_demand", "final_delta_vth_v",
                "final_permanent_vth_v", "final_em_drift_ohm")


def assert_results_match(fleet_result, reference, tolerance=0.0):
    """Fleet chip view vs a standalone SystemResult, field by field."""
    for field in ARRAY_FIELDS:
        a = np.asarray(getattr(fleet_result, field), dtype=float)
        b = np.asarray(getattr(reference, field), dtype=float)
        assert a.shape == b.shape, field
        worst = float(np.abs(a - b).max(initial=0.0))
        assert worst <= tolerance, (field, worst)
    assert np.array_equal(fleet_result.em_failures,
                          reference.em_failures)
    assert fleet_result.migration_events == reference.migration_events
    assert fleet_result.n_epochs == reference.n_epochs
    assert fleet_result.total_demand == reference.total_demand
    assert fleet_result.total_dropped_demand \
        == reference.total_dropped_demand


class TestFleetVsSerial:
    """The ISSUE acceptance property: 4 chips, element-wise <= 1e-10."""

    N_CHIPS = 4
    N_EPOCHS = 30
    SPEC = FleetVariationSpec(capture_sigma=0.05, recovery_sigma=0.08,
                              em_current_sigma=0.05)
    SEED = 3

    @staticmethod
    def policy():
        # recovery_slots=1 rotates BTI recovery through all 4 cores
        # and em_alternate_every=2 inserts reverse-current epochs, so
        # the horizon contains many recovery intervals of both kinds.
        return RoundRobinRecoveryPolicy(recovery_slots=1,
                                        em_alternate_every=2)

    @staticmethod
    def workload():
        return ConstantWorkload(n_cores=4, utilization=0.5)

    @pytest.fixture(scope="class")
    def fleet_result(self):
        return run_fleet_lifetime_study(
            (2, 2), self.N_CHIPS, self.workload(), self.policy(),
            n_epochs=self.N_EPOCHS, variation=self.SPEC,
            seed=self.SEED)

    def test_each_chip_matches_standalone_simulator(self, fleet_result):
        variation = self.SPEC.draw(self.N_CHIPS, self.SEED)
        for index in range(self.N_CHIPS):
            simulator = SystemSimulator(
                Chip(2, 2), variation=variation.chip(index))
            reference = simulator.run(self.N_EPOCHS, self.workload(),
                                      self.policy())
            assert_results_match(fleet_result.chip_result(index),
                                 reference,
                                 tolerance=RESULT_TOLERANCE)

    def test_equivalence_holds_after_recovery_interval(self):
        """Stop exactly one epoch after a BTI recovery interval ends.

        With recovery_slots=1 on 4 cores, core 0 heals in epoch 0 and
        is stressed again from epoch 1; running 6 epochs puts every
        core through a full heal-stress cycle before the comparison.
        """
        fleet = run_fleet_lifetime_study(
            (2, 2), self.N_CHIPS, self.workload(), self.policy(),
            n_epochs=6, variation=self.SPEC, seed=self.SEED)
        variation = self.SPEC.draw(self.N_CHIPS, self.SEED)
        for index in range(self.N_CHIPS):
            simulator = SystemSimulator(
                Chip(2, 2), variation=variation.chip(index))
            reference = simulator.run(6, self.workload(),
                                      self.policy())
            assert_results_match(fleet.chip_result(index), reference,
                                 tolerance=RESULT_TOLERANCE)

    def test_variation_actually_spreads_the_population(self,
                                                       fleet_result):
        assert np.ptp(fleet_result.guardbands) > 0.0
        assert np.ptp(fleet_result.final_delta_vth_v.max(axis=1)) > 0.0

    def test_guardband_accessors(self, fleet_result):
        bands = fleet_result.guardbands
        assert bands.shape == (self.N_CHIPS,)
        assert fleet_result.guardband_quantile(0.0) \
            == pytest.approx(bands.min())
        assert fleet_result.guardband_quantile(1.0) \
            == pytest.approx(bands.max())
        assert "chips" in fleet_result.describe()
        with pytest.raises(SimulationError):
            fleet_result.guardband_quantile(1.5)


class TestFleetSubStepGroups:
    """Chips with different sub-step counts advance independently."""

    def test_wild_variation_still_matches_serial(self):
        # Capture sigma large enough that per-chip n_steps straddles
        # several ceil boundaries, forcing the grouped gather/scatter
        # path in StackedTrapPopulations.step.
        spec = FleetVariationSpec(capture_sigma=1.2,
                                  recovery_sigma=0.5,
                                  em_current_sigma=0.4)
        n_chips, n_epochs = 6, 12
        policy = RoundRobinRecoveryPolicy(recovery_slots=2,
                                          em_alternate_every=3)
        workload = ConstantWorkload(n_cores=9, utilization=0.7)
        fleet = run_fleet_lifetime_study(
            (3, 3), n_chips, workload, policy, n_epochs=n_epochs,
            variation=spec, seed=11)
        variation = spec.draw(n_chips, 11)
        for index in range(n_chips):
            simulator = SystemSimulator(
                Chip(3, 3), variation=variation.chip(index))
            reference = simulator.run(
                n_epochs, ConstantWorkload(n_cores=9, utilization=0.7),
                RoundRobinRecoveryPolicy(recovery_slots=2,
                                         em_alternate_every=3))
            assert_results_match(fleet.chip_result(index), reference,
                                 tolerance=RESULT_TOLERANCE)

    def test_stacked_traps_match_per_chip_fleet_states(self):
        """Direct kernel check: stacked vs 3 independent FleetBtiState."""
        n_units = 2
        accelerations = [0.05, 0.9, 12.0]  # 1, ~6 and 64 sub-steps
        stacked = StackedTrapPopulations(len(accelerations), n_units)
        singles = [FleetBtiState(n_units) for _ in accelerations]
        dt = 3600.0
        stress = np.ones((3, n_units), dtype=bool)
        capture = np.array([[a, a * 1.1] for a in accelerations])
        recovery = np.ones((3, n_units))
        for _ in range(4):
            stacked.step(dt, stress, capture, recovery)
            for i, single in enumerate(singles):
                single.step(dt, stress[i], capture[i], recovery[i])
        # And one all-recovery interval.
        rest = np.zeros((3, n_units), dtype=bool)
        recovery_hot = np.full((3, n_units), 40.0)
        stacked.step(dt, rest, capture, recovery_hot)
        for i, single in enumerate(singles):
            single.step(dt, rest[i], capture[i], recovery_hot[i])
        for i, single in enumerate(singles):
            assert np.array_equal(
                stacked.occupancy[i * n_units:(i + 1) * n_units],
                single.occupancy)
            assert np.array_equal(
                stacked.age_s[i * n_units:(i + 1) * n_units],
                single.age_s)
            assert np.array_equal(
                stacked.weights[i * n_units:(i + 1) * n_units],
                single.weights)
            assert np.array_equal(
                stacked.permanent_vth_v()[i], single.permanent_v)
        assert stacked.delta_vth_v().shape == (3, n_units)

    def test_stacked_traps_validation(self):
        with pytest.raises(SimulationError):
            StackedTrapPopulations(0, 4)
        with pytest.raises(SimulationError):
            StackedTrapPopulations(2, 0)
        stacked = StackedTrapPopulations(2, 2)
        with pytest.raises(SimulationError):
            stacked.step(-1.0, np.ones((2, 2), dtype=bool),
                         np.ones((2, 2)), np.ones((2, 2)))
        with pytest.raises(SimulationError):
            stacked.step(1.0, np.ones((3, 2), dtype=bool),
                         np.ones((2, 2)), np.ones((2, 2)))


class TestHomogeneousFleet:
    """Without variation every chip is the same chip, exactly."""

    def test_identical_chips_identical_columns(self):
        fleet = run_fleet_lifetime_study(
            (2, 2), 3, ConstantWorkload(n_cores=4, utilization=0.6),
            NoRecoveryPolicy(), n_epochs=10)
        for index in (1, 2):
            assert np.array_equal(fleet.worst_degradation[:, 0],
                                  fleet.worst_degradation[:, index])
            assert np.array_equal(fleet.final_delta_vth_v[0],
                                  fleet.final_delta_vth_v[index])

    def test_matches_lifetime_sweep_cells(self):
        """The fleet reproduces the pooled path's per-cell summaries."""
        policy = RoundRobinRecoveryPolicy(recovery_slots=1,
                                          em_alternate_every=2)
        workload = ConstantWorkload(n_cores=4, utilization=0.5)
        chips = [ChipConfig(2, 2, name=f"chip{i}") for i in range(3)]
        sweep = run_lifetime_sweep({"rr1": policy},
                                   {"flat": workload}, chips,
                                   n_epochs=8, seed=7)
        fleet = run_fleet_lifetime_study(
            (2, 2), 3, ConstantWorkload(n_cores=4, utilization=0.5),
            RoundRobinRecoveryPolicy(recovery_slots=1,
                                     em_alternate_every=2),
            n_epochs=8)
        bands = fleet.guardbands
        for index, cell in enumerate(sweep.cells):
            assert abs(cell.guardband - bands[index]) \
                <= RESULT_TOLERANCE
            assert abs(cell.final_delta_vth_v
                       - fleet.final_delta_vth_v[index].max()) \
                <= RESULT_TOLERANCE


class TestVariationDraws:
    def test_draw_matches_draw_chip(self):
        spec = FleetVariationSpec(0.1, 0.2, 0.3)
        population = spec.draw(5, seed=42)
        for index in range(5):
            chip = spec.draw_chip(index, seed=42)
            assert population.capture_scale[index] \
                == chip.capture_scale
            assert population.recovery_scale[index] \
                == chip.recovery_scale
            assert population.em_current_scale[index] \
                == chip.em_current_scale

    def test_draw_independent_of_population_size(self):
        spec = FleetVariationSpec(0.1, 0.1, 0.1)
        small = spec.draw(3, seed=9)
        large = spec.draw(8, seed=9)
        assert np.array_equal(small.capture_scale,
                              large.capture_scale[:3])

    def test_zero_sigma_is_exactly_one(self):
        population = FleetVariationSpec().draw(4, seed=1)
        assert np.all(population.capture_scale == 1.0)
        assert np.all(population.recovery_scale == 1.0)
        assert np.all(population.em_current_scale == 1.0)

    def test_validation(self):
        with pytest.raises(SimulationError):
            FleetVariationSpec(capture_sigma=-0.1)
        with pytest.raises(SimulationError):
            ChipVariation(capture_scale=0.0)
        with pytest.raises(SimulationError):
            FleetVariation(capture_scale=np.array([1.0, -1.0]),
                           recovery_scale=np.ones(2),
                           em_current_scale=np.ones(2))
        with pytest.raises(SimulationError):
            FleetVariation.none(0)

    def test_simulator_rejects_mismatched_draw(self):
        with pytest.raises(SimulationError):
            FleetSimulator(Chip(2, 2), 3,
                           variation=FleetVariation.none(2))


class TestFleetValidation:
    def test_run_arguments(self):
        simulator = FleetSimulator(Chip(2, 2), 2)
        with pytest.raises(SimulationError):
            simulator.run(0, ConstantWorkload(n_cores=4),
                          NoRecoveryPolicy())
        with pytest.raises(SimulationError):
            simulator.run(1, ConstantWorkload(n_cores=4),
                          NoRecoveryPolicy(), record_every=0)
        with pytest.raises(SimulationError):
            FleetSimulator(Chip(2, 2), 0)
        with pytest.raises(SimulationError):
            FleetSimulator(Chip(2, 2), 2, epoch_s=0.0)

    def test_chip_result_bounds(self):
        fleet = run_fleet_lifetime_study(
            (2, 2), 2, ConstantWorkload(n_cores=4),
            NoRecoveryPolicy(), n_epochs=2)
        with pytest.raises(SimulationError):
            fleet.chip_result(2)
        with pytest.raises(SimulationError):
            fleet.chip_result(-1)


class TestFleetEmKey:
    def test_key_token_matches_byte_keyed_cache(self):
        reference = FleetEmState(3, _em_reference())
        keyed = FleetEmState(3, _em_reference())
        j = np.array([2e10, -2e10, 0.0])
        temps = np.array([360.0, 355.0, 350.0])
        for epoch in range(6):
            flip = 1.0 if epoch % 2 == 0 else -1.0
            reference.step(3600.0, flip * j, temps)
            keyed.step(3600.0, flip * j, temps,
                       key=("assignment", flip))
        assert np.array_equal(reference.progress_s, keyed.progress_s)
        assert np.array_equal(reference.void_reversible_m,
                              keyed.void_reversible_m)
        assert keyed._step_cache.hits == 4

    def test_step_cache_size_validation(self):
        with pytest.raises(SimulationError):
            FleetEmState(2, _em_reference(), step_cache_size=0)


def _em_reference():
    from repro import units
    from repro.em.line import EmStressCondition
    return EmStressCondition(current_density_a_m2=2e10,
                             temperature_k=units.celsius_to_kelvin(85.0),
                             name="test reference")


class TestBatchedEmStatistics:
    SPEC = WirePopulationSpec(n_wires=40, median_ttf_s=1e8, sigma=0.4)

    def test_matrix_min_equals_population_ttfs(self):
        matrix = sample_population_ttf_matrix(self.SPEC, n_chips=50,
                                              seed=5)
        assert matrix.shape == (50, 40)
        assert np.array_equal(matrix.min(axis=1),
                              sample_population_ttfs(self.SPEC,
                                                     n_chips=50,
                                                     seed=5))

    def test_single_group_mixed_is_plain_population(self):
        mixed = sample_mixed_population_ttfs([self.SPEC], n_chips=30,
                                             seed=2)
        assert np.array_equal(
            mixed, sample_population_ttfs(self.SPEC, n_chips=30,
                                          seed=2))

    def test_mixed_population_is_series_system(self):
        """Quantiles track the product of the groups' survivals."""
        rails = WirePopulationSpec(n_wires=30, median_ttf_s=5e7,
                                   sigma=0.3)
        stubs = WirePopulationSpec(n_wires=100, median_ttf_s=4e8,
                                   sigma=0.5)
        samples = sample_mixed_population_ttfs([rails, stubs],
                                               n_chips=4000, seed=8)
        assert samples.shape == (4000,)
        # Weakest link: dominated by (but never above) the weaker
        # group alone; empirical median within MC scatter of the
        # closed-form series combination.
        time = float(np.median(samples))
        both = 1.0 - ((1.0 - rails.chip_failure_probability(time))
                      * (1.0 - stubs.chip_failure_probability(time)))
        assert 0.45 <= both <= 0.55
        with pytest.raises(SimulationError):
            sample_mixed_population_ttfs([], n_chips=10)
        with pytest.raises(SimulationError):
            sample_mixed_population_ttfs([rails], n_chips=0)


class TestWorkAwareGates:
    def test_small_lifetime_sweep_stays_serial(self):
        # max_workers forwards to the fleet chunk executor, whose
        # work-aware gate keeps a tiny grid off the pool.
        reports = []
        run_lifetime_sweep(
            {"none": NoRecoveryPolicy()},
            {"flat": ConstantWorkload(n_cores=4)},
            [ChipConfig(2, 2, name=f"c{i}") for i in range(5)],
            n_epochs=4, max_workers=4, on_report=reports.append)
        assert reports[-1].mode == "fleet"
        assert "pool threshold" in reports[-1].serial_reason

    def test_small_pooled_sweep_stays_serial(self):
        # Forcing the per-cell pool route still hits run_sweep's
        # min_tasks_for_pool gate on the same tiny grid.
        reports = []
        run_lifetime_sweep(
            {"none": NoRecoveryPolicy()},
            {"flat": ConstantWorkload(n_cores=4)},
            [ChipConfig(2, 2, name=f"c{i}") for i in range(5)],
            n_epochs=4, max_workers=4, engine="pooled",
            on_report=reports.append)
        assert reports[-1].mode == "serial"
        assert "min_tasks_for_pool" in reports[-1].serial_reason

    def test_explicit_threshold_overrides_gate(self):
        reports = []
        run_lifetime_sweep(
            {"none": NoRecoveryPolicy()},
            {"flat": ConstantWorkload(n_cores=4)},
            [ChipConfig(2, 2, name=f"c{i}") for i in range(2)],
            n_epochs=2, max_workers=1, min_tasks_for_pool=1,
            on_report=reports.append)
        # max_workers=1 still forces serial, but for its own reason:
        # the work gate must not have rewritten the explicit override.
        assert "min_tasks_for_pool" not in \
            (reports[-1].serial_reason or "")

    def test_small_ring_fleet_stays_serial(self):
        reports = []
        members = ring_oscillator_fleet(5, delta_vth_v=0.02,
                                        sigma_vth_v=0.005, seed=3,
                                        max_workers=4,
                                        on_report=reports.append)
        assert len(members) == 5
        assert reports[-1].mode == "serial"
        assert "min_tasks_for_pool" in reports[-1].serial_reason
