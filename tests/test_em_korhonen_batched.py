"""Equivalence properties of the batched Korhonen engine.

:class:`~repro.em.korhonen.KorhonenBatch` advances a ``(n_wires,
n_nodes)`` stacked stress state through one batched tridiagonal solve
per step.  The batched back-substitution mirrors LAPACK's ``gtts2``
arithmetic row by row (including its pivot swaps), so a batch wire is
*bit identical* to a serial :class:`~repro.em.korhonen.KorhonenSolver`
run -- these tests pin that exactly (``==``, not ``allclose``) for
uniform and per-wire parameters, mixed boundary groups, compaction via
:meth:`~repro.em.korhonen.KorhonenBatch.retain`, and the wide-batch
vectorized path of
:meth:`~repro.solvers.factorized.TridiagonalOperator.solve_many`.
"""

import dataclasses

import numpy as np
import pytest

from repro.em import PAPER_EM_STRESS, PAPER_TEST_WIRE
from repro.em.korhonen import (
    BoundaryKind,
    KorhonenBatch,
    KorhonenConfig,
    KorhonenSolver,
    _build_step_operator,
)
from repro.em.statistics import sample_nucleation_ttfs_pde
from repro.errors import SimulationError
from repro.solvers import cache_counters
from repro.solvers.factorized import VECTORIZED_MIN_COLUMNS

KAPPA = 3.5e-14
GRADIENT = 3.5e13
LENGTH = 2.673e-3
CONFIG = KorhonenConfig(n_nodes=121, max_dt_s=600.0)


def serial_stress(duration_s, kappa, gradient,
                  start=BoundaryKind.BLOCKED,
                  end=BoundaryKind.BLOCKED) -> np.ndarray:
    solver = KorhonenSolver(LENGTH, CONFIG)
    solver.advance(duration_s, kappa, gradient, start, end)
    return solver.stress.copy()


class TestBatchedMatchesSerial:
    def test_uniform_parameters_are_bitwise(self):
        batch = KorhonenBatch(LENGTH, 5, CONFIG)
        batch.advance(7200.0, KAPPA, GRADIENT)
        reference = serial_stress(7200.0, KAPPA, GRADIENT)
        for wire in range(5):
            assert np.array_equal(batch.stress[wire], reference)
        assert batch.time_s == 7200.0

    def test_per_wire_parameters_are_bitwise(self):
        kappas = KAPPA * np.array([0.5, 1.0, 2.0])
        gradients = GRADIENT * np.array([0.8, 1.0, 1.3])
        batch = KorhonenBatch(LENGTH, 3, CONFIG)
        batch.advance(3600.0, kappas, gradients)
        for wire in range(3):
            reference = serial_stress(3600.0, float(kappas[wire]),
                                      float(gradients[wire]))
            assert np.array_equal(batch.stress[wire], reference)

    def test_mixed_boundary_groups_are_bitwise(self):
        starts = [BoundaryKind.BLOCKED, BoundaryKind.VOID,
                  BoundaryKind.BLOCKED, BoundaryKind.VOID]
        ends = [BoundaryKind.BLOCKED, BoundaryKind.BLOCKED,
                BoundaryKind.VOID, BoundaryKind.VOID]
        batch = KorhonenBatch(LENGTH, 4, CONFIG)
        batch.advance(3600.0, KAPPA, GRADIENT, start_boundary=starts,
                      end_boundary=ends)
        for wire in range(4):
            reference = serial_stress(3600.0, KAPPA, GRADIENT,
                                      starts[wire], ends[wire])
            assert np.array_equal(batch.stress[wire], reference)

    def test_multiple_advances_accumulate_like_serial(self):
        batch = KorhonenBatch(LENGTH, 2, CONFIG)
        solver = KorhonenSolver(LENGTH, CONFIG)
        for duration in (900.0, 2500.0, 333.0):
            batch.advance(duration, KAPPA, GRADIENT)
            solver.advance(duration, KAPPA, GRADIENT)
        assert np.array_equal(batch.stress[0], solver.stress)
        assert np.array_equal(batch.stress[1], solver.stress)
        assert batch.time_s == solver.time_s

    def test_wide_batch_exercises_vectorized_solve(self):
        # Past VECTORIZED_MIN_COLUMNS the batched engine switches from
        # LAPACK gttrs to the numpy row-sweep; the result must not
        # change by a single bit.
        n_wires = VECTORIZED_MIN_COLUMNS + 16
        batch = KorhonenBatch(LENGTH, n_wires, CONFIG)
        batch.advance(1800.0, KAPPA, GRADIENT)
        reference = serial_stress(1800.0, KAPPA, GRADIENT)
        assert np.array_equal(
            batch.stress, np.tile(reference, (n_wires, 1)))


class TestSolveMany:
    @pytest.mark.parametrize("start,end,pivots", [
        # A BLOCKED end's -2r ghost entry out-sizes the shifted
        # diagonal at large r, so gttrf pivots near the last
        # elimination rows; a VOID start adds a pivoted run near the
        # identity row.  BLOCKED/VOID is the one pivot-free layout.
        (BoundaryKind.BLOCKED, BoundaryKind.BLOCKED, True),
        (BoundaryKind.VOID, BoundaryKind.BLOCKED, True),
        (BoundaryKind.BLOCKED, BoundaryKind.VOID, False),
        (BoundaryKind.VOID, BoundaryKind.VOID, True),
    ])
    def test_matches_per_column_solve_bitwise(self, start, end,
                                              pivots):
        n = 257
        operator = _build_step_operator(n, 75.0, start, end)
        assert operator._pivoted_rows.any() == pivots
        rng = np.random.default_rng(11)
        block = rng.standard_normal((n, VECTORIZED_MIN_COLUMNS + 8))
        wide = operator.solve_many(block.copy())
        for column in range(0, block.shape[1],
                            VECTORIZED_MIN_COLUMNS // 4):
            assert np.array_equal(wide[:, column],
                                  operator.solve(block[:, column]))

    def test_narrow_block_falls_back_to_lapack(self):
        operator = _build_step_operator(101, 10.0,
                                        BoundaryKind.BLOCKED,
                                        BoundaryKind.BLOCKED)
        rng = np.random.default_rng(5)
        block = rng.standard_normal((101, 3))
        narrow = operator.solve_many(block.copy())
        for column in range(3):
            assert np.array_equal(narrow[:, column],
                                  operator.solve(block[:, column]))

    def test_overwrite_rhs_writes_in_place(self):
        operator = _build_step_operator(64, 2.0, BoundaryKind.BLOCKED,
                                        BoundaryKind.BLOCKED)
        rng = np.random.default_rng(9)
        block = np.ascontiguousarray(
            rng.standard_normal((64, VECTORIZED_MIN_COLUMNS)))
        expected = operator.solve_many(block.copy())
        out = operator.solve_many(block, overwrite_rhs=True)
        assert out is block
        assert np.array_equal(block, expected)

    def test_rejects_wrong_shape(self):
        operator = _build_step_operator(64, 2.0, BoundaryKind.BLOCKED,
                                        BoundaryKind.BLOCKED)
        with pytest.raises(ValueError):
            operator.solve_many(np.zeros((65, 4)))
        with pytest.raises(ValueError):
            operator.solve_many(np.zeros(64))


class TestRetain:
    def test_surviving_wires_are_unperturbed(self):
        kappas = KAPPA * np.linspace(0.5, 1.5, 6)
        full = KorhonenBatch(LENGTH, 6, CONFIG)
        full.advance(1800.0, kappas, GRADIENT)
        keep = np.array([0, 2, 5])
        compacted = full.copy()
        compacted.retain(keep)
        assert compacted.n_wires == 3
        compacted.advance(1800.0, kappas[keep], GRADIENT)
        # The dropped columns never coupled to the survivors, so the
        # compacted trajectory matches the uncompacted one exactly.
        full.advance(1800.0, kappas, GRADIENT)
        assert np.array_equal(compacted.stress, full.stress[keep])

    def test_rejects_bad_indices(self):
        batch = KorhonenBatch(LENGTH, 4, CONFIG)
        with pytest.raises(ValueError):
            batch.retain([])
        with pytest.raises(ValueError):
            batch.retain([4])
        with pytest.raises(ValueError):
            batch.retain([[0, 1]])


class TestValidation:
    def test_rejects_bad_wire_count(self):
        with pytest.raises(ValueError):
            KorhonenBatch(LENGTH, 0, CONFIG)

    def test_rejects_mismatched_row_shapes(self):
        batch = KorhonenBatch(LENGTH, 3, CONFIG)
        with pytest.raises(ValueError):
            batch.advance(100.0, np.full(2, KAPPA), GRADIENT)
        with pytest.raises(ValueError):
            batch.advance(100.0, KAPPA, GRADIENT,
                          start_boundary=[BoundaryKind.BLOCKED] * 2)

    def test_rejects_non_positive_kappa_rows(self):
        batch = KorhonenBatch(LENGTH, 3, CONFIG)
        with pytest.raises(SimulationError):
            batch.advance(100.0, [KAPPA, 0.0, KAPPA], GRADIENT)

    def test_counts_batched_solves(self):
        before = cache_counters().get("em.korhonen.lu.batched",
                                      {"batched_solves": 0,
                                       "batched_rows": 0})
        batch = KorhonenBatch(LENGTH, 8, CONFIG)
        batch.advance(1800.0, KAPPA, GRADIENT)
        del batch  # totals must outlive the engine that recorded them
        after = cache_counters()["em.korhonen.lu.batched"]
        assert after["batched_solves"] > before["batched_solves"]
        assert after["batched_rows"] - before["batched_rows"] >= 8


class TestBatchedTtfSampler:
    def test_batched_and_serial_engines_agree_exactly(self):
        config = KorhonenConfig(n_nodes=101, max_dt_s=5e3)
        condition = dataclasses.replace(
            PAPER_EM_STRESS,
            current_density_a_m2=PAPER_EM_STRESS.current_density_a_m2
            * 0.05)
        kwargs = dict(wire=PAPER_TEST_WIRE, condition=condition,
                      j_sigma=0.1, seed=42, config=config)
        batched = sample_nucleation_ttfs_pde(
            24, 6e6, 2e5, engine="batched", **kwargs)
        serial = sample_nucleation_ttfs_pde(
            24, 6e6, 2e5, engine="serial", **kwargs)
        assert np.array_equal(batched, serial)
        # The scenario must actually nucleate and spread across
        # probes, or the equality above is vacuous.
        finite = np.isfinite(batched)
        assert finite.any()
        assert np.unique(batched[finite]).size > 1

    def test_rejects_unknown_engine(self):
        with pytest.raises(ValueError):
            sample_nucleation_ttfs_pde(4, 1e6, 1e5, engine="turbo")
