"""Tests for repro.assist.sweeps (pooled assist studies)."""

import numpy as np
import pytest

from repro.assist import (
    AssistCircuitConfig,
    AssistMode,
    mode_switch_matrix,
    ring_oscillator_fleet,
    sweep_load_size,
    sweep_load_size_pooled,
)
from repro.circuit import RingOscillatorNetlist
from repro.sensors import RingOscillator


class TestLoadSizeSweep:
    def test_matches_serial_sweep(self):
        config = AssistCircuitConfig()
        serial = sweep_load_size((1, 2, 3), config)
        pooled = sweep_load_size_pooled((1, 2, 3), config,
                                        min_tasks_for_pool=2)
        assert pooled == serial

    def test_rejects_empty_grid(self):
        with pytest.raises(ValueError):
            sweep_load_size_pooled(())


class TestModeSwitchMatrix:
    def test_covers_all_ordered_pairs(self):
        cells = mode_switch_matrix(stop_s=40e-9, dt_s=0.4e-9,
                                   max_workers=1)
        pairs = {(cell.from_mode, cell.to_mode) for cell in cells}
        assert len(cells) == 6
        assert all(a != b for a, b in pairs)
        assert pairs == {(a, b) for a in AssistMode for b in AssistMode
                         if a != b}

    def test_bti_entry_switch_settles(self):
        cells = mode_switch_matrix(
            mode_pairs=[(AssistMode.NORMAL, AssistMode.BTI_RECOVERY)],
            stop_s=100e-9, dt_s=0.4e-9, max_workers=1)
        (cell,) = cells
        assert np.isfinite(cell.switching_time_s)
        assert cell.switching_time_s > 0.0
        # BTI recovery swaps the load rails: lvdd near ground, lvss
        # near the supply (minus the pass-device droop).
        assert cell.settled_load_vdd_v < 0.5
        assert cell.settled_load_vss_v > 0.5

    def test_rejects_empty_pairs(self):
        with pytest.raises(ValueError):
            mode_switch_matrix(mode_pairs=[])


class TestRingFleet:
    def test_deterministic_across_worker_counts(self):
        netlist = RingOscillatorNetlist(stages=3)
        kwargs = dict(delta_vth_v=0.04, sigma_vth_v=0.02,
                      netlist=netlist, seed=5)
        serial = ring_oscillator_fleet(3, max_workers=1, **kwargs)
        pooled = ring_oscillator_fleet(3, max_workers=2,
                                       min_tasks_for_pool=2, **kwargs)
        assert pooled == serial
        assert [member.index for member in serial] == [0, 1, 2]

    def test_zero_sigma_fleet_is_uniform(self):
        netlist = RingOscillatorNetlist(stages=3)
        fleet = ring_oscillator_fleet(2, delta_vth_v=0.05,
                                      netlist=netlist, max_workers=1)
        assert fleet[0].delta_vth_v == fleet[1].delta_vth_v == 0.05
        assert fleet[0].frequency_hz == fleet[1].frequency_hz

    def test_aging_slows_the_fleet(self):
        netlist = RingOscillatorNetlist(stages=3)
        fresh = ring_oscillator_fleet(1, netlist=netlist,
                                      max_workers=1)
        aged = ring_oscillator_fleet(1, delta_vth_v=0.1,
                                     netlist=netlist, max_workers=1)
        assert aged[0].frequency_hz < fresh[0].frequency_hz

    def test_sensor_inversion_roundtrip(self):
        # The compact sensor model inverts the fleet's frequencies
        # back to threshold shifts in one vectorized call.
        netlist = RingOscillatorNetlist(stages=3)
        fleet = ring_oscillator_fleet(3, delta_vth_v=0.03,
                                      sigma_vth_v=0.01,
                                      netlist=netlist, seed=2,
                                      max_workers=1)
        frequencies = np.array([m.frequency_hz for m in fleet])
        fresh = ring_oscillator_fleet(1, netlist=netlist,
                                      max_workers=1)[0].frequency_hz
        sensor = RingOscillator(stages=3,
                                fresh_frequency_hz=fresh,
                                supply_v=netlist.supply_v,
                                fresh_vth_v=netlist.nmos.vth_v)
        inferred = sensor.infer_delta_vth_v_array(frequencies)
        scalar = np.array([sensor.infer_delta_vth_v(f)
                           for f in frequencies])
        # numpy's ** and libm's pow may disagree in the last ulp.
        np.testing.assert_allclose(inferred, scalar, rtol=1e-14)
        # The compact law's alpha is not the transistor-level ring's,
        # so the absolute scale differs; the inversion must still be
        # positive and order the members by their true shifts.
        true_shifts = np.array([m.delta_vth_v for m in fleet])
        assert np.all(inferred > 0.0)
        assert np.array_equal(np.argsort(inferred),
                              np.argsort(true_shifts))

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            ring_oscillator_fleet(0)
        with pytest.raises(ValueError):
            ring_oscillator_fleet(1, sigma_vth_v=-0.1)


class TestBatchedEngineRouting:
    """The batched grid engine behind the sweep entry points.

    With ``engine="auto"`` and no pooled-runner knobs, the studies run
    as one batched tensor sweep; observables must match the pooled
    runner (bitwise for the uncondensed ring fleet, within LAPACK
    roundoff for the condensed assist cell).  Pool knobs force the
    pooled path and are rejected alongside ``engine="batched"``.
    """

    def test_batched_load_sweep_matches_pooled(self):
        loads = (1, 2, 4)
        batched = sweep_load_size_pooled(loads, engine="batched")
        pooled = sweep_load_size_pooled(loads, engine="pooled",
                                        max_workers=1)
        for b, p in zip(batched, pooled):
            assert b.n_loads == p.n_loads
            assert abs(b.load_swing_v - p.load_swing_v) <= 1e-10
            assert abs(b.delay_normalized - p.delay_normalized) \
                <= 1e-10
            assert abs(b.switching_time_s - p.switching_time_s) \
                <= 1e-10

    def test_batched_mode_matrix_matches_pooled(self):
        batched = mode_switch_matrix(stop_s=40e-9, dt_s=0.4e-9,
                                     engine="batched")
        pooled = mode_switch_matrix(stop_s=40e-9, dt_s=0.4e-9,
                                    engine="pooled", max_workers=1)
        assert len(batched) == len(pooled) == 6
        for b, p in zip(batched, pooled):
            assert (b.from_mode, b.to_mode) == (p.from_mode, p.to_mode)
            assert b.settled_load_vdd_v == pytest.approx(
                p.settled_load_vdd_v, abs=1e-10)
            assert b.settled_load_vss_v == pytest.approx(
                p.settled_load_vss_v, abs=1e-10)
            if np.isfinite(p.switching_time_s):
                assert abs(b.switching_time_s - p.switching_time_s) \
                    <= 1e-10
            else:
                assert not np.isfinite(b.switching_time_s)

    def test_batched_fleet_is_bitwise_identical_to_pooled(self):
        netlist = RingOscillatorNetlist(stages=3)
        kwargs = dict(delta_vth_v=0.02, sigma_vth_v=0.01,
                      netlist=netlist, seed=5)
        batched = ring_oscillator_fleet(4, engine="batched", **kwargs)
        pooled = ring_oscillator_fleet(4, engine="pooled",
                                       max_workers=1, **kwargs)
        assert batched == pooled

    def test_batched_engine_rejects_pool_knobs(self):
        with pytest.raises(ValueError, match="pooled"):
            sweep_load_size_pooled((1, 2), engine="batched",
                                   max_workers=2)
        with pytest.raises(ValueError, match="pooled"):
            mode_switch_matrix(engine="batched", retries=1)
        with pytest.raises(ValueError, match="pooled"):
            ring_oscillator_fleet(2, engine="batched",
                                  on_error="skip")

    def test_rejects_unknown_engine(self):
        with pytest.raises(ValueError, match="engine"):
            ring_oscillator_fleet(2, engine="turbo")

    def test_auto_with_pool_knobs_stays_pooled(self):
        # Setting any pool knob under engine="auto" must keep the
        # pooled semantics (here: a serial in-process run).
        loads = (1, 2)
        auto = sweep_load_size_pooled(loads, max_workers=1)
        pooled = sweep_load_size_pooled(loads, engine="pooled",
                                        max_workers=1)
        assert auto == pooled
