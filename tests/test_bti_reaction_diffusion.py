"""Tests for repro.bti.reaction_diffusion (the alternative substrate)."""

import pytest

from repro import units
from repro.bti.conditions import (
    ACTIVE_ACCELERATED_RECOVERY,
    BtiStressCondition,
    PASSIVE_RECOVERY,
    TABLE1_RECOVERY_CONDITIONS,
)
from repro.bti.reaction_diffusion import (
    ReactionDiffusionBtiModel,
    ReactionDiffusionConfig,
)
from repro.errors import SimulationError


@pytest.fixture()
def model() -> ReactionDiffusionBtiModel:
    return ReactionDiffusionBtiModel()


class TestStress:
    def test_fresh_state(self, model):
        assert model.delta_vth_v == 0.0
        assert model.permanent_vth_v == 0.0

    def test_power_law_exponent(self, model):
        model.apply_stress(units.hours(1.0))
        one_hour = model.recoverable_vth_v
        model.reset()
        model.apply_stress(units.hours(64.0))
        ratio = model.recoverable_vth_v / one_hour
        assert ratio == pytest.approx(64.0 ** (1.0 / 6.0), rel=0.05)

    def test_stress_phases_compose(self):
        split = ReactionDiffusionBtiModel()
        split.apply_stress(units.hours(2.0))
        split.apply_stress(units.hours(3.0))
        joint = ReactionDiffusionBtiModel()
        joint.apply_stress(units.hours(5.0))
        assert split.delta_vth_v == pytest.approx(joint.delta_vth_v,
                                                  rel=1e-9)

    def test_milder_condition_stresses_less(self, model):
        mild = BtiStressCondition(
            voltage=0.45, temperature_k=units.celsius_to_kelvin(60.0))
        model.apply_stress(units.hours(10.0), mild)
        mild_shift = model.delta_vth_v
        model.reset()
        model.apply_stress(units.hours(10.0))
        assert model.delta_vth_v > mild_shift

    def test_rejects_negative_duration(self, model):
        with pytest.raises(SimulationError):
            model.apply_stress(-1.0)


class TestRecovery:
    def test_recovery_reduces_shift(self, model):
        model.apply_stress(units.hours(24.0))
        before = model.delta_vth_v
        model.apply_recovery(units.hours(6.0),
                             ACTIVE_ACCELERATED_RECOVERY)
        assert model.delta_vth_v < before

    def test_permanent_survives_recovery(self, model):
        model.apply_stress(units.hours(24.0))
        permanent = model.permanent_vth_v
        assert permanent > 0.0
        model.apply_recovery(units.days(30.0),
                             ACTIVE_ACCELERATED_RECOVERY)
        assert model.permanent_vth_v == pytest.approx(permanent)
        assert model.delta_vth_v >= permanent

    def test_recovery_on_fresh_device_is_noop(self, model):
        model.apply_recovery(units.hours(6.0), PASSIVE_RECOVERY)
        assert model.delta_vth_v == 0.0


class TestTable1Comparison:
    def test_passive_and_joint_rows_fit(self, model):
        """The R-D shape can hit the outer rows of Table I..."""
        passive = model.recovery_fraction_after(
            units.hours(24.0), units.hours(6.0), PASSIVE_RECOVERY)
        joint = model.recovery_fraction_after(
            units.hours(24.0), units.hours(6.0),
            ACTIVE_ACCELERATED_RECOVERY)
        assert passive == pytest.approx(0.0066, abs=0.02)
        assert joint == pytest.approx(0.724, abs=0.08)

    def test_middle_rows_structurally_miss(self, model):
        """... but NOT the middle rows -- the sqrt(xi) recovery shape
        is too shallow.  This documented failure is why the trap model
        is the primary substrate."""
        active = model.recovery_fraction_after(
            units.hours(24.0), units.hours(6.0),
            TABLE1_RECOVERY_CONDITIONS[1])
        assert abs(active - 0.167) > 0.04

    def test_ordering_is_still_correct(self, model):
        fractions = [model.recovery_fraction_after(
            units.hours(24.0), units.hours(6.0), condition)
            for condition in TABLE1_RECOVERY_CONDITIONS]
        assert fractions[0] < fractions[1] < fractions[3]
        assert fractions[0] < fractions[2] < fractions[3]


class TestSchedulingRobustness:
    def test_balanced_schedule_stays_fresh(self, model):
        """The paper's central scheduling claim holds under R-D
        physics too: in-time recovery -> no permanent component."""
        for _ in range(6):
            model.apply_stress(units.hours(1.0))
            model.apply_recovery(units.hours(1.0),
                                 ACTIVE_ACCELERATED_RECOVERY)
        assert model.permanent_vth_v == 0.0
        assert model.delta_vth_v < 1e-3

    def test_long_stress_intervals_accumulate(self):
        lazy = ReactionDiffusionBtiModel()
        for _ in range(6):
            lazy.apply_stress(units.hours(4.0))
            lazy.apply_recovery(units.hours(1.0),
                                ACTIVE_ACCELERATED_RECOVERY)
        assert lazy.permanent_vth_v > 0.0

    def test_schedule_runner_compatibility(self):
        """The model satisfies the runner's phase interface."""
        from repro.core.schedule import PeriodicSchedule, \
            run_bti_schedule
        outcome = run_bti_schedule(
            ReactionDiffusionBtiModel(),
            PeriodicSchedule.from_hours(1.0, 1.0, 4),
            ACTIVE_ACCELERATED_RECOVERY)
        assert outcome.fully_healed


class TestValidation:
    def test_rejects_bad_exponent(self):
        with pytest.raises(SimulationError):
            ReactionDiffusionConfig(exponent=1.5)

    def test_rejects_bad_shape(self):
        with pytest.raises(SimulationError):
            ReactionDiffusionConfig(recovery_shape=0.0)

    def test_reset(self, model):
        model.apply_stress(units.hours(24.0))
        model.reset()
        assert model.delta_vth_v == 0.0
        assert model.elapsed_s == 0.0
