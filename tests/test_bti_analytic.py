"""Tests for repro.bti.analytic (compact BTI models)."""

import pytest

from repro import units
from repro.bti.analytic import (
    AnalyticBtiModel,
    PowerLawStressModel,
    UniversalRelaxationModel,
)
from repro.bti.conditions import (
    ACTIVE_ACCELERATED_RECOVERY,
    BtiStressCondition,
    PASSIVE_RECOVERY,
    TABLE1_STRESS,
)


class TestPowerLawStress:
    def test_zero_time_gives_zero_shift(self):
        assert PowerLawStressModel().shift(0.0) == 0.0

    def test_shift_grows_sublinearly(self):
        model = PowerLawStressModel()
        one = model.shift(units.hours(1.0))
        ten = model.shift(units.hours(10.0))
        assert one < ten < 10.0 * one

    def test_inversion_roundtrip(self):
        model = PowerLawStressModel()
        shift = model.shift(units.hours(123.0))
        assert model.equivalent_stress_time(shift) == pytest.approx(
            units.hours(123.0), rel=1e-9)

    def test_weaker_condition_produces_less_shift(self):
        model = PowerLawStressModel()
        use = BtiStressCondition(voltage=0.45,
                                 temperature_k=units.celsius_to_kelvin(
                                     60.0))
        assert model.shift(units.hours(10.0), use) \
            < model.shift(units.hours(10.0), TABLE1_STRESS)

    def test_rejects_invalid_exponent(self):
        with pytest.raises(ValueError):
            PowerLawStressModel(exponent=1.5)

    def test_rejects_negative_time(self):
        with pytest.raises(ValueError):
            PowerLawStressModel().shift(-1.0)


class TestUniversalRelaxation:
    def test_no_recovery_means_full_remainder(self):
        model = UniversalRelaxationModel()
        assert model.remaining_fraction(
            0.0, units.hours(1.0), PASSIVE_RECOVERY) == 1.0

    def test_remaining_decreases_with_recovery_time(self):
        model = UniversalRelaxationModel()
        short = model.remaining_fraction(
            units.hours(1.0), units.hours(24.0), PASSIVE_RECOVERY)
        long = model.remaining_fraction(
            units.hours(12.0), units.hours(24.0), PASSIVE_RECOVERY)
        assert long < short < 1.0

    def test_stronger_condition_recovers_more(self):
        model = UniversalRelaxationModel()
        passive = model.recovered_fraction(
            units.hours(6.0), units.hours(24.0), PASSIVE_RECOVERY)
        joint = model.recovered_fraction(
            units.hours(6.0), units.hours(24.0),
            ACTIVE_ACCELERATED_RECOVERY)
        assert joint > passive

    def test_fractions_are_complementary(self):
        model = UniversalRelaxationModel()
        remaining = model.remaining_fraction(
            units.hours(2.0), units.hours(24.0), PASSIVE_RECOVERY)
        recovered = model.recovered_fraction(
            units.hours(2.0), units.hours(24.0), PASSIVE_RECOVERY)
        assert remaining + recovered == pytest.approx(1.0)

    def test_rejects_zero_stress_time(self):
        with pytest.raises(ValueError):
            UniversalRelaxationModel().remaining_fraction(
                1.0, 0.0, PASSIVE_RECOVERY)


class TestAnalyticBtiModel:
    def test_one_shot_leaves_permanent_after_long_stress(self):
        model = AnalyticBtiModel()
        total = model.stress_model.shift(units.hours(24.0))
        healed = model.one_shot_shift(
            units.hours(24.0), units.days(30.0),
            ACTIVE_ACCELERATED_RECOVERY)
        assert healed >= total * model.permanent_fraction * 0.99

    def test_short_stress_one_shot_can_heal_fully(self):
        model = AnalyticBtiModel()
        healed = model.one_shot_shift(
            units.minutes(30.0), units.days(30.0),
            ACTIVE_ACCELERATED_RECOVERY)
        total = model.stress_model.shift(units.minutes(30.0))
        # Below the lock-in age nothing is permanent, so a long joint
        # recovery removes almost everything (slow log-like tail aside).
        assert healed < 0.15 * total

    def test_balanced_duty_cycle_bounds_shift(self):
        model = AnalyticBtiModel()
        bounded = model.duty_cycled_shift(
            units.years(10.0), units.hours(1.0), units.hours(1.0),
            ACTIVE_ACCELERATED_RECOVERY)
        unbounded = model.stress_model.shift(units.years(5.0))
        assert bounded < 0.5 * unbounded

    def test_long_stress_intervals_accumulate_permanent(self):
        model = AnalyticBtiModel()
        gentle = model.duty_cycled_shift(
            units.years(1.0), units.hours(1.0), units.hours(1.0),
            ACTIVE_ACCELERATED_RECOVERY)
        harsh = model.duty_cycled_shift(
            units.years(1.0), units.hours(8.0), units.hours(1.0),
            ACTIVE_ACCELERATED_RECOVERY)
        assert harsh > gentle

    def test_duty_cycled_never_exceeds_continuous(self):
        model = AnalyticBtiModel()
        scheduled = model.duty_cycled_shift(
            units.years(2.0), units.hours(4.0), units.hours(1.0),
            PASSIVE_RECOVERY)
        continuous = model.stress_model.shift(units.years(2.0))
        assert scheduled <= continuous

    def test_zero_time_gives_zero(self):
        model = AnalyticBtiModel()
        assert model.duty_cycled_shift(
            0.0, units.hours(1.0), units.hours(1.0),
            ACTIVE_ACCELERATED_RECOVERY) == 0.0

    def test_rejects_bad_permanent_fraction(self):
        with pytest.raises(ValueError):
            AnalyticBtiModel(permanent_fraction=1.0)
