"""Tests for repro.em.blacks (Black's equation)."""

import pytest

from repro import units
from repro.em.blacks import BlacksModel


@pytest.fixture()
def model() -> BlacksModel:
    return BlacksModel.from_reference(
        ttf_s=units.minutes(900.0),
        current_density_a_m2=units.ma_per_cm2(7.96),
        temperature_k=units.celsius_to_kelvin(230.0))


class TestFromReference:
    def test_reproduces_reference_point(self, model):
        assert model.ttf_s(units.ma_per_cm2(7.96),
                           units.celsius_to_kelvin(230.0)) \
            == pytest.approx(units.minutes(900.0), rel=1e-9)

    def test_rejects_bad_reference(self):
        with pytest.raises(ValueError):
            BlacksModel.from_reference(0.0, 1e10, 500.0)


class TestScaling:
    def test_lower_current_lives_longer(self, model):
        assert model.ttf_s(units.ma_per_cm2(1.0), 400.0) \
            > model.ttf_s(units.ma_per_cm2(7.96), 400.0)

    def test_current_exponent_two(self, model):
        ratio = model.ttf_s(units.ma_per_cm2(1.0), 400.0) \
            / model.ttf_s(units.ma_per_cm2(2.0), 400.0)
        assert ratio == pytest.approx(4.0, rel=1e-9)

    def test_cooler_lives_longer(self, model):
        assert model.ttf_s(1e10, units.celsius_to_kelvin(85.0)) \
            > model.ttf_s(1e10, units.celsius_to_kelvin(230.0))

    def test_use_condition_projection_is_years(self, model):
        """Accelerated minutes-scale TTF projects to years at use."""
        use_ttf = model.ttf_s(units.ma_per_cm2(1.0),
                              units.celsius_to_kelvin(85.0))
        assert use_ttf > units.years(1.0)

    def test_acceleration_factor_consistency(self, model):
        factor = model.acceleration_factor(
            units.ma_per_cm2(7.96), units.celsius_to_kelvin(230.0),
            units.ma_per_cm2(1.0), units.celsius_to_kelvin(85.0))
        direct = model.ttf_s(units.ma_per_cm2(1.0),
                             units.celsius_to_kelvin(85.0)) \
            / model.ttf_s(units.ma_per_cm2(7.96),
                          units.celsius_to_kelvin(230.0))
        assert factor == pytest.approx(direct, rel=1e-12)

    def test_zero_current_never_fails(self, model):
        assert model.ttf_s(0.0, 400.0) == float("inf")

    def test_rejects_non_positive_temperature(self, model):
        with pytest.raises(ValueError):
            model.ttf_s(1e10, 0.0)


class TestValidation:
    def test_rejects_non_positive_prefactor(self):
        with pytest.raises(ValueError):
            BlacksModel(prefactor=0.0)

    def test_rejects_non_positive_exponent(self):
        with pytest.raises(ValueError):
            BlacksModel(prefactor=1.0, current_exponent=0.0)
