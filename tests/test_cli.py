"""Tests for repro.cli (the command-line interface)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nope"])

    def test_table1_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.stress_hours == 24.0
        assert args.recovery_hours == 6.0

    def test_fig7_overrides(self):
        args = build_parser().parse_args(
            ["fig7", "--stress-min", "20", "--recovery-min", "10"])
        assert args.stress_min == 20.0
        assert args.recovery_min == 10.0

    def test_fleet_defaults(self):
        args = build_parser().parse_args(["fleet"])
        assert args.chips == 64
        assert args.chip == "3x3"
        assert args.checkpoint_dir is None
        assert args.checkpoint_every is None

    def test_resume_requires_directory(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["resume"])
        args = build_parser().parse_args(["resume", "ckpt"])
        assert args.checkpoint_dir == "ckpt"


class TestCommands:
    def test_table1_prints_all_rows(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "72.40%" in out
        assert "No.1 passive" in out

    def test_fig4_prints_schedules(self, capsys):
        assert main(["fig4", "--cycles", "3"]) == 0
        out = capsys.readouterr().out
        assert "1h : 1h" in out
        assert "4h : 1h" in out

    def test_fig7_prints_delay_factor(self, capsys):
        assert main(["fig7"]) == 0
        out = capsys.readouterr().out
        assert "delay factor" in out
        assert "x" in out

    def test_fig9_prints_modes(self, capsys):
        assert main(["fig9"]) == 0
        out = capsys.readouterr().out
        assert "bti-active-recovery" in out

    def test_margins_prints_reduction(self, capsys):
        assert main(["margins", "--years", "5"]) == 0
        out = capsys.readouterr().out
        assert "reduction" in out

    def test_system_prints_policies(self, capsys):
        assert main(["system", "--epochs", "12"]) == 0
        out = capsys.readouterr().out
        assert "round-robin healing" in out

    def test_blech_prints_verdict(self, capsys):
        assert main(["blech"]) == 0
        out = capsys.readouterr().out
        assert "mortal" in out
        assert "critical (immortal) segment length" in out

    def test_blech_short_wire_is_immortal_at_low_density(self, capsys):
        assert main(["blech", "--density-ma-cm2", "0.01"]) == 0
        out = capsys.readouterr().out
        assert "-> immortal" in out

    def test_plan_prints_schedule(self, capsys):
        assert main(["plan", "--years", "5"]) == 0
        out = capsys.readouterr().out
        assert "deep-healing plan:" in out
        assert "availability" in out

    def test_fleet_prints_population_summary(self, capsys):
        assert main(["fleet", "--chips", "4", "--chip", "2x2",
                     "--epochs", "4", "--workers", "0"]) == 0
        out = capsys.readouterr().out
        assert "Fleet lifetime study (4 chips, 4 epochs)" in out
        assert "p99 worst-core dVth" in out

    def test_fleet_then_resume_round_trip(self, capsys, tmp_path):
        directory = str(tmp_path / "ckpt")
        assert main(["fleet", "--chips", "4", "--chip", "2x2",
                     "--epochs", "4", "--workers", "0",
                     "--checkpoint-dir", directory,
                     "--checkpoint-every", "2"]) == 0
        first = capsys.readouterr().out
        assert "resume" in first
        assert main(["resume", directory, "--workers", "0"]) == 0
        second = capsys.readouterr().out
        assert "Resumed fleet study" in second
        # The resumed run restores every chunk, so the population
        # summary matches the original line for line.
        tail = first.split("quantity")[1].split("checkpoints")[0]
        assert tail.strip() in second
