"""Smoke tests: every shipped example runs and prints its tables.

The examples are part of the public surface; these tests keep them
working against library changes.  Long-running sweeps are exercised
with reduced parameters where the example exposes them.
"""

import importlib
import sys

import pytest

sys.path.insert(0, "examples")


def run_module_main(name: str, capsys) -> str:
    module = importlib.import_module(name)
    module.main()
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_module_main("quickstart", capsys)
        assert "Table I protocol" in out
        assert "72.4%" in out
        assert "bti-active-recovery" in out

    def test_iot_implant_lifetime(self, capsys):
        out = run_module_main("iot_implant_lifetime", capsys)
        assert "worst-case (no recovery)" in out
        assert "deep healing in sleep" in out
        assert "unbounded" in out

    def test_manycore_dark_silicon(self, capsys):
        module = importlib.import_module("manycore_dark_silicon")
        module.run(24)
        out = capsys.readouterr().out
        assert "dark-silicon rotation" in out
        assert "guardband" in out

    def test_lifetime_sweep(self, capsys):
        module = importlib.import_module("lifetime_sweep")
        module.run(48)
        out = capsys.readouterr().out
        assert "lifetime sweep: 6 cells" in out
        assert "best worst-case guardband" in out
        assert "rr heal" in out

    def test_compensation_vs_healing(self, capsys):
        out = run_module_main("compensation_vs_healing", capsys)
        assert "derating" in out
        assert "deep-healing" in out
        assert "rebalance signal probability" in out

    def test_fleet_study(self, capsys):
        module = importlib.import_module("fleet_study")
        module.run(256, 24)
        out = capsys.readouterr().out
        assert "fleet study: 256 chips x 24 epochs" in out
        assert "guardband p50" in out
        assert "rr deep healing" in out
        assert "p99 shipping guardband" in out

    def test_mission_planning(self, capsys):
        out = run_module_main("mission_planning", capsys)
        assert "deep-healing plan:" in out
        assert "margin" in out

    @pytest.mark.slow
    def test_pdn_em_protection(self, capsys):
        out = run_module_main("pdn_em_protection", capsys)
        assert "Most EM-exposed grid segments" in out
        assert "PDE verification" in out

    def test_assist_sweep(self, capsys):
        module = importlib.import_module("assist_sweep")
        module.run(2)
        out = capsys.readouterr().out
        assert "Fig. 10 load-size sweep (2 pooled points)" in out
        assert "delay rises with load size" in out
        assert "Fig. 9 mode-switch matrix" in out
        assert "BTI_RECOVERY" in out

    def test_batched_design_space(self, capsys):
        module = importlib.import_module("batched_design_space")
        module.run(4, 32)
        out = capsys.readouterr().out
        assert "batched Fig. 10 grid: 4 points" in out
        assert "pareto" in out
        assert "batched Korhonen TTF sampling: 32 wires" in out
        assert "rows/solve" in out
