"""Tests for repro.units."""

import math

import pytest

from repro import units


class TestTemperatureConversion:
    def test_celsius_to_kelvin_room(self):
        assert units.celsius_to_kelvin(20.0) == pytest.approx(293.15)

    def test_kelvin_to_celsius_roundtrip(self):
        assert units.kelvin_to_celsius(
            units.celsius_to_kelvin(110.0)) == pytest.approx(110.0)

    def test_celsius_below_absolute_zero_rejected(self):
        with pytest.raises(ValueError):
            units.celsius_to_kelvin(-300.0)

    def test_negative_kelvin_rejected(self):
        with pytest.raises(ValueError):
            units.kelvin_to_celsius(-1.0)

    def test_room_temperature_constant(self):
        assert units.ROOM_TEMPERATURE_K == pytest.approx(293.15)


class TestDurations:
    def test_hours(self):
        assert units.hours(24.0) == 86400.0

    def test_minutes(self):
        assert units.minutes(90.0) == 5400.0

    def test_days(self):
        assert units.days(2.0) == 172800.0

    def test_years_is_julian(self):
        assert units.years(1.0) == pytest.approx(365.25 * 86400.0)

    def test_to_hours_inverts_hours(self):
        assert units.to_hours(units.hours(7.5)) == pytest.approx(7.5)

    def test_to_minutes_inverts_minutes(self):
        assert units.to_minutes(units.minutes(13.0)) == pytest.approx(13.0)

    def test_to_years_inverts_years(self):
        assert units.to_years(units.years(50.0)) == pytest.approx(50.0)


class TestCurrentDensity:
    def test_paper_stress_density(self):
        # The paper stresses at 7.96 MA/cm^2.
        assert units.ma_per_cm2(7.96) == pytest.approx(7.96e10)

    def test_roundtrip(self):
        assert units.to_ma_per_cm2(
            units.ma_per_cm2(3.2)) == pytest.approx(3.2)


class TestArrhenius:
    def test_identity_at_reference(self):
        assert units.arrhenius_factor(1.0, 350.0, 350.0) == 1.0

    def test_hotter_is_faster(self):
        assert units.arrhenius_factor(0.5, 383.15, 293.15) > 1.0

    def test_colder_is_slower(self):
        assert units.arrhenius_factor(0.5, 293.15, 383.15) < 1.0

    def test_zero_activation_energy_is_flat(self):
        assert units.arrhenius_factor(0.0, 400.0, 300.0) == 1.0

    def test_known_value(self):
        # exp(Ea/k * (1/T_ref - 1/T)) with Ea = kB * T products.
        factor = units.arrhenius_factor(0.1, 400.0, 300.0)
        expected = math.exp((0.1 / units.BOLTZMANN_EV)
                            * (1.0 / 300.0 - 1.0 / 400.0))
        assert factor == pytest.approx(expected)

    def test_rejects_negative_temperature(self):
        with pytest.raises(ValueError):
            units.arrhenius_factor(0.5, -1.0, 300.0)

    def test_rejects_negative_energy(self):
        with pytest.raises(ValueError):
            units.arrhenius_factor(-0.5, 300.0, 300.0)


class TestThermalVoltage:
    def test_room_value(self):
        assert units.thermal_voltage(293.15) == pytest.approx(
            0.02526, rel=1e-3)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            units.thermal_voltage(0.0)
