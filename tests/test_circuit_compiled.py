"""Equivalence properties of the compiled MNA engine vs the seed loop.

The compiled engine (:mod:`repro.circuit.compiled`) must be *bit*
identical to the seed's per-element stamping loop, which is kept
verbatim in :mod:`benchmarks.seed_circuit`.  These tests drive both
engines over the netlist families the repo actually uses -- linear RC,
the assist circuit's mode switches, transistor-level ring oscillators
-- including waveform-driven current sources, ``from_dc=False`` starts
and both device kernels (scalar and vectorized), and assert exact
array equality plus matching mutated netlist state.
"""

import numpy as np
import pytest

from benchmarks.seed_circuit import seed_dc_operating_point, seed_transient
from repro.assist.circuitry import (
    AssistCircuit,
    AssistCircuitConfig,
    mode_switch_waveforms,
)
from repro.assist.modes import AssistMode
from repro.circuit import (
    Circuit,
    CompiledCircuit,
    NMOS_28NM,
    RingOscillatorNetlist,
    evaluate_waveform_grid,
    transient,
)
from repro.circuit.dc import dc_operating_point


def rc_lowpass() -> Circuit:
    circuit = Circuit("rc lowpass")
    circuit.add_voltage_source("vs", "in", "gnd", 0.5)
    circuit.add_resistor("r1", "in", "out", 10e3)
    circuit.add_capacitor("c1", "out", "gnd", 1e-9)
    return circuit


def current_driven_rc() -> Circuit:
    circuit = Circuit("current-driven rc")
    circuit.add_current_source("idrive", "gnd", "out", 10e-6)
    circuit.add_resistor("r1", "out", "gnd", 50e3)
    circuit.add_capacitor("c1", "out", "gnd", 2e-9)
    return circuit


def nmos_amplifier() -> Circuit:
    circuit = Circuit("nmos amplifier")
    circuit.add_voltage_source("vdd", "vdd", "gnd", 1.0)
    circuit.add_voltage_source("vin", "g", "gnd", 0.55)
    circuit.add_resistor("rd", "vdd", "d", 20e3)
    circuit.add_mosfet("m1", "d", "g", "gnd", NMOS_28NM)
    circuit.add_capacitor("cl", "d", "gnd", 10e-15)
    return circuit


def assert_transients_equal(result, reference):
    assert np.array_equal(result.times_s, reference.times_s)
    assert np.array_equal(result.solutions, reference.solutions)


class TestDcEquivalence:
    def test_rc_operating_point(self):
        compiled = dc_operating_point(rc_lowpass())
        seeded = seed_dc_operating_point(rc_lowpass())
        assert np.array_equal(compiled.solution, seeded.solution)
        assert compiled.iterations == seeded.iterations

    @pytest.mark.parametrize("mode", list(AssistMode))
    def test_assist_modes(self, mode):
        compiled = AssistCircuit(AssistCircuitConfig())
        compiled.set_mode(mode)
        seeded = AssistCircuit(AssistCircuitConfig())
        seeded.set_mode(mode)
        a = dc_operating_point(compiled.circuit)
        b = seed_dc_operating_point(seeded.circuit)
        assert np.array_equal(a.solution, b.solution)
        assert a.iterations == b.iterations

    def test_kernels_agree_on_dc(self):
        # The scalar and ufunc device kernels are interchangeable.
        results = []
        for use_vector in (False, True):
            circuit = nmos_amplifier()
            program = CompiledCircuit(circuit, use_vector=use_vector)
            results.append(dc_operating_point(circuit,
                                              program=program))
        assert np.array_equal(results[0].solution, results[1].solution)
        assert results[0].iterations == results[1].iterations


class TestTransientEquivalence:
    def test_rc_step_waveform(self):
        waveforms = {"vs": lambda t: 1.0 if t >= 2e-6 else 0.0}
        compiled = transient(rc_lowpass(), stop_s=20e-6, dt_s=0.2e-6,
                             waveforms=waveforms)
        seeded = seed_transient(rc_lowpass(), stop_s=20e-6,
                                dt_s=0.2e-6, waveforms=waveforms)
        assert_transients_equal(compiled, seeded)

    def test_current_source_waveform(self):
        # Waveform-driven *current* sources exercise the other RHS
        # branch of the compiled source grid.
        waveforms = {"idrive":
                     lambda t: 20e-6 * np.sin(2e5 * np.asarray(t))}
        compiled = transient(current_driven_rc(), stop_s=50e-6,
                             dt_s=0.5e-6, waveforms=waveforms)
        seeded = seed_transient(current_driven_rc(), stop_s=50e-6,
                                dt_s=0.5e-6, waveforms=waveforms)
        assert_transients_equal(compiled, seeded)

    def test_assist_mode_switch(self):
        config = AssistCircuitConfig(n_loads=2)
        compiled = AssistCircuit(config)
        result = compiled.mode_switch_transient(
            AssistMode.NORMAL, AssistMode.BTI_RECOVERY,
            stop_s=40e-9, dt_s=0.4e-9)

        seeded = AssistCircuit(config)
        waveforms = mode_switch_waveforms(
            AssistMode.NORMAL, AssistMode.BTI_RECOVERY,
            config.supply_v, 5e-9)
        seeded.set_mode(AssistMode.NORMAL)
        reference = seed_transient(seeded.circuit, stop_s=40e-9,
                                   dt_s=0.4e-9, waveforms=waveforms)
        assert_transients_equal(result, reference)

    def test_ring_oscillator_from_zero_state(self):
        # from_dc=False starts at the all-zero MNA vector, the path
        # the oscillator uses to break metastability.
        netlist = RingOscillatorNetlist(stages=3)
        stop_s, dt_s = netlist.simulation_window(n_periods_hint=3.0)
        compiled = transient(netlist.build(), stop_s=stop_s,
                             dt_s=dt_s, from_dc=False)
        seeded = seed_transient(netlist.build(), stop_s=stop_s,
                                dt_s=dt_s, from_dc=False)
        assert_transients_equal(compiled, seeded)

    def test_kernels_agree_on_transient(self, monkeypatch):
        netlist = RingOscillatorNetlist(stages=3)
        stop_s, dt_s = netlist.simulation_window(n_periods_hint=2.0)

        def forced_vector(circuit, use_vector=None):
            return CompiledCircuit(circuit, use_vector=True)

        scalar = transient(netlist.build(), stop_s=stop_s, dt_s=dt_s,
                           from_dc=False)
        # The package re-exports shadow the submodule attribute, so
        # fetch the module object itself.
        import sys
        transient_module = sys.modules["repro.circuit.transient"]
        monkeypatch.setattr(transient_module, "CompiledCircuit",
                            forced_vector)
        vector = transient(netlist.build(), stop_s=stop_s, dt_s=dt_s,
                           from_dc=False)
        assert_transients_equal(scalar, vector)

    def test_final_netlist_state_matches_seed(self):
        # Both engines must leave the mutated netlist in the same
        # state: sources at the last waveform value, capacitors at
        # their last solved voltage.
        waveforms = {"vs": lambda t: 1.0 if t >= 2e-6 else 0.0}
        compiled_circuit = rc_lowpass()
        seeded_circuit = rc_lowpass()
        transient(compiled_circuit, stop_s=20e-6, dt_s=0.2e-6,
                  waveforms=waveforms)
        seed_transient(seeded_circuit, stop_s=20e-6, dt_s=0.2e-6,
                       waveforms=waveforms)
        assert compiled_circuit.find_voltage_source("vs").volts \
            == seeded_circuit.find_voltage_source("vs").volts
        for a, b in zip(compiled_circuit.capacitors,
                        seeded_circuit.capacitors):
            assert a.voltage_v == b.voltage_v


class TestWaveformGrid:
    def test_vectorized_waveform_single_call(self):
        calls = []

        def waveform(t):
            calls.append(np.ndim(t))
            return np.where(np.asarray(t) >= 1.0, 2.0, -1.0)

        times = np.linspace(0.0, 2.0, 11)
        grid = evaluate_waveform_grid(waveform, times)
        assert calls == [1]
        assert np.array_equal(grid,
                              np.where(times >= 1.0, 2.0, -1.0))

    def test_scalar_waveform_fallback_matches_per_step(self):
        def waveform(t):
            return 1.0 if t >= 1.0 else 0.0  # scalar-only branch

        times = np.linspace(0.0, 2.0, 9)
        grid = evaluate_waveform_grid(waveform, times)
        assert np.array_equal(
            grid, np.array([waveform(t) for t in times]))

    def test_scalar_returning_waveform_falls_back(self):
        # A waveform that accepts arrays but collapses to a scalar
        # must not be mistaken for an array-aware one.
        times = np.linspace(0.0, 1.0, 5)
        grid = evaluate_waveform_grid(lambda t: 3.0, times)
        assert np.array_equal(grid, np.full(5, 3.0))
