"""Equivalence properties of the batched-grid MNA engine.

The batched engine (:mod:`repro.circuit.batched`) advances every
parameter-grid point of a same-topology population in one tensor
sweep.  Its contract against the per-point compiled engine comes in
two strengths: with ``condense=False`` the stacked solve reproduces
each solo run *bit for bit* (same getrf/getrs arithmetic, same Newton
control flow under per-row masks); with source condensation on, the
reduced elimination order differs, so agreement is within LAPACK
roundoff -- pinned here at 1e-12 over the Fig. 10 grid.  A crafted
slow-converging row checks the per-row convergence masks: one damped
row must not perturb (or stall) the rest of the batch.
"""

import numpy as np
import pytest

from repro.assist.circuitry import (
    AssistCircuit,
    AssistCircuitConfig,
    mode_switch_waveforms,
)
from repro.assist.modes import AssistMode
from repro.circuit import (
    Circuit,
    CircuitBatch,
    NMOS_28NM,
    RingOscillatorNetlist,
    dc_batch,
    transient,
    transient_batch,
)
from repro.circuit.dc import dc_operating_point
from repro.solvers import cache_counters

CONDENSED_TOL = 1e-12

#: Fig. 10 load-grid sizes, including the paper's 1..5 range.
LOAD_GRID = (1, 2, 3, 4, 5, 8)


def nmos_amplifier(rd_ohms: float, vin_v: float) -> Circuit:
    circuit = Circuit(f"nmos amplifier rd={rd_ohms:g} vin={vin_v:g}")
    circuit.add_voltage_source("vdd", "vdd", "gnd", 1.0)
    circuit.add_voltage_source("vin", "g", "gnd", vin_v)
    circuit.add_resistor("rd", "vdd", "d", rd_ohms)
    circuit.add_mosfet("m1", "d", "g", "gnd", NMOS_28NM)
    circuit.add_capacitor("cl", "d", "gnd", 10e-15)
    return circuit


def assist_cells(modes=None):
    """One assist cell per Fig. 10 grid point, set to ``modes``."""
    cells = [AssistCircuit(AssistCircuitConfig(n_loads=n))
             for n in LOAD_GRID]
    if modes is not None:
        for cell in cells:
            cell.set_mode(modes)
    return cells


class TestBatchedDc:
    def test_fig10_grid_matches_per_point_within_tolerance(self):
        cells = assist_cells(AssistMode.NORMAL)
        batched = dc_batch([cell.circuit for cell in cells])
        for cell, solution in zip(assist_cells(AssistMode.NORMAL),
                                  batched):
            reference = dc_operating_point(cell.circuit)
            assert np.max(np.abs(solution.solution
                                 - reference.solution)) \
                <= CONDENSED_TOL

    def test_uncondensed_grid_is_bitwise(self):
        cells = assist_cells(AssistMode.NORMAL)
        batched = dc_batch([cell.circuit for cell in cells],
                           condense=False)
        for cell, solution in zip(assist_cells(AssistMode.NORMAL),
                                  batched):
            reference = dc_operating_point(cell.circuit)
            assert np.array_equal(solution.solution,
                                  reference.solution)
            assert solution.iterations == reference.iterations

    def test_slow_converging_row_does_not_perturb_the_batch(self):
        # The 5 V gate drive forces repeated damped Newton steps on
        # one row while its neighbours converge in a handful of
        # iterations; per-row masks must keep every row identical to
        # its solo run anyway.
        grid = [(20e3, 0.55), (20e3, 0.35), (5e3, 5.0), (40e3, 0.75)]
        circuits = [nmos_amplifier(rd, vin) for rd, vin in grid]
        batched = dc_batch(circuits, condense=False)
        iteration_counts = []
        for (rd, vin), solution in zip(grid, batched):
            reference = dc_operating_point(nmos_amplifier(rd, vin))
            assert np.array_equal(solution.solution,
                                  reference.solution)
            assert solution.iterations == reference.iterations
            iteration_counts.append(solution.iterations)
        # The crafted row really is slower -- otherwise this test
        # would not exercise the convergence masks at all.
        assert max(iteration_counts) > min(iteration_counts)

    def test_counts_batched_solves(self):
        before = cache_counters().get("circuit.lu.batched",
                                      {"batched_solves": 0,
                                       "batched_rows": 0})
        # The totals must survive the batch itself: built, used and
        # dropped inside the call, its traffic still lands in the
        # durable per-name counters sweep telemetry reads.
        dc_batch([cell.circuit for cell in assist_cells(
            AssistMode.NORMAL)])
        after = cache_counters()["circuit.lu.batched"]
        assert after["batched_solves"] > before["batched_solves"]
        assert after["batched_rows"] - before["batched_rows"] \
            >= len(LOAD_GRID)


class TestBatchedTransient:
    def test_mode_switch_grid_matches_per_point(self):
        waveforms = mode_switch_waveforms(
            AssistMode.NORMAL, AssistMode.BTI_RECOVERY,
            AssistCircuitConfig().supply_v, switch_at_s=2e-9)
        cells = assist_cells(AssistMode.NORMAL)
        batched = transient_batch([cell.circuit for cell in cells],
                                  stop_s=20e-9, dt_s=0.4e-9,
                                  waveforms=waveforms)
        for cell, result in zip(assist_cells(AssistMode.NORMAL),
                                batched):
            reference = transient(cell.circuit, 20e-9, 0.4e-9,
                                  waveforms=waveforms)
            assert np.array_equal(result.times_s, reference.times_s)
            assert np.max(np.abs(result.solutions
                                 - reference.solutions)) \
                <= CONDENSED_TOL

    def test_uncondensed_mode_switch_is_bitwise(self):
        waveforms = mode_switch_waveforms(
            AssistMode.NORMAL, AssistMode.BTI_RECOVERY,
            AssistCircuitConfig().supply_v, switch_at_s=2e-9)
        cells = assist_cells(AssistMode.NORMAL)
        batched = transient_batch([cell.circuit for cell in cells],
                                  stop_s=20e-9, dt_s=0.4e-9,
                                  waveforms=waveforms, condense=False)
        for cell, result in zip(assist_cells(AssistMode.NORMAL),
                                batched):
            reference = transient(cell.circuit, 20e-9, 0.4e-9,
                                  waveforms=waveforms)
            assert np.array_equal(result.solutions,
                                  reference.solutions)

    def test_ring_rows_with_per_row_windows_are_bitwise(self):
        # Rings condense nothing, so the batched rows must reproduce
        # each solo transient exactly -- including per-row (stop, dt)
        # windows, which share the step count by construction.
        netlists = [RingOscillatorNetlist(stages=3).aged(shift)
                    for shift in (0.0, 0.03, 0.08)]
        circuits = [net.build() for net in netlists]
        windows = [net.simulation_window() for net in netlists]
        batched = transient_batch(
            circuits,
            stop_s=[stop for stop, _ in windows],
            dt_s=[dt for _, dt in windows],
            from_dc=False)
        for net, result in zip(netlists, batched):
            solo = net.build()
            stop_s, dt_s = net.simulation_window()
            reference = transient(solo, stop_s, dt_s, from_dc=False)
            assert np.array_equal(result.times_s, reference.times_s)
            assert np.array_equal(result.solutions,
                                  reference.solutions)

    def test_rejects_mismatched_step_counts(self):
        circuits = [RingOscillatorNetlist(stages=3).build()
                    for _ in range(2)]
        with pytest.raises(ValueError, match="step count"):
            transient_batch(circuits, stop_s=[10e-9, 10e-9],
                            dt_s=[0.1e-9, 0.2e-9], from_dc=False)


class TestBatchValidation:
    def test_rejects_heterogeneous_topologies(self):
        mixed = [RingOscillatorNetlist(stages=3).build(),
                 RingOscillatorNetlist(stages=5).build()]
        with pytest.raises(ValueError, match="pooled"):
            CircuitBatch(mixed)

    def test_rejects_empty_batch(self):
        with pytest.raises(ValueError):
            CircuitBatch([])

    def test_rejects_unknown_waveform_source(self):
        circuits = [nmos_amplifier(20e3, 0.55)]
        with pytest.raises(ValueError, match="no source"):
            transient_batch(circuits, stop_s=1e-9, dt_s=0.1e-9,
                            waveforms={"nope": lambda t: 0.0})
