"""Tests for repro.circuit.oscillator (transistor-level RO)."""

import pytest

from repro.circuit.oscillator import RingOscillatorNetlist
from repro.errors import SimulationError
from repro.sensors.ring_oscillator import RingOscillator


@pytest.fixture(scope="module")
def ring() -> RingOscillatorNetlist:
    return RingOscillatorNetlist(stages=5)


@pytest.fixture(scope="module")
def fresh_frequency(ring) -> float:
    return ring.measured_frequency_hz()


class TestOscillation:
    def test_it_oscillates(self, fresh_frequency):
        assert fresh_frequency > 0.0

    def test_frequency_is_plausible(self, fresh_frequency):
        """1/(2 N t_stage) with the first-order stage delay estimate."""
        ring = RingOscillatorNetlist(stages=5)
        i_sat = 0.5 * ring.nmos.beta \
            * (ring.supply_v - ring.nmos.vth_v) ** 2
        stage_delay = ring.stage_capacitance_f * ring.supply_v / i_sat
        estimate = 1.0 / (2.0 * ring.stages * stage_delay)
        assert fresh_frequency == pytest.approx(estimate, rel=0.6)

    def test_more_stages_run_slower(self, fresh_frequency):
        slow = RingOscillatorNetlist(stages=9).measured_frequency_hz()
        assert slow < fresh_frequency

    def test_more_capacitance_runs_slower(self, ring, fresh_frequency):
        from dataclasses import replace
        heavy = replace(ring, stage_capacitance_f=10e-15)
        assert heavy.measured_frequency_hz() < fresh_frequency


class TestAging:
    def test_aged_ring_is_slower(self, ring, fresh_frequency):
        aged = ring.aged(0.05).measured_frequency_hz()
        assert aged < fresh_frequency

    def test_degradation_monotone_in_shift(self, ring):
        small = ring.frequency_degradation(0.02)
        large = ring.frequency_degradation(0.06)
        assert 0.0 < small < large

    def test_cross_validates_compact_model(self, ring):
        """The transistor-level degradation should match the
        alpha-power compact model with the square-law alpha = 2."""
        shift = 0.05
        measured = ring.frequency_degradation(shift)
        compact = RingOscillator(supply_v=ring.supply_v,
                                 fresh_vth_v=ring.nmos.vth_v,
                                 alpha=2.0)
        predicted = compact.frequency_degradation(shift)
        assert measured == pytest.approx(predicted, rel=0.25)


class TestValidation:
    def test_rejects_even_stage_count(self):
        with pytest.raises(SimulationError):
            RingOscillatorNetlist(stages=4)

    def test_rejects_too_few_stages(self):
        with pytest.raises(SimulationError):
            RingOscillatorNetlist(stages=1)

    def test_rejects_negative_aging(self, ring):
        with pytest.raises(SimulationError):
            ring.aged(-0.01)

    def test_dead_ring_raises(self, ring):
        """Aged past cutoff, the ring stops and measurement fails."""
        dead = ring.aged(ring.supply_v)
        with pytest.raises(SimulationError):
            dead.measured_frequency_hz()
