"""Tests for repro.system.scheduler and repro.system.dark_silicon."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.system.chip import Chip
from repro.system.dark_silicon import DarkSiliconRotationPolicy
from repro.system.scheduler import (
    CoreAssignment,
    NoRecoveryPolicy,
    RoundRobinRecoveryPolicy,
)

N = 8
AGES = np.linspace(0.0, 0.03, N)


class TestCoreAssignment:
    def test_rejects_misaligned_arrays(self):
        with pytest.raises(SimulationError):
            CoreAssignment(np.zeros(3), np.zeros(2, dtype=bool),
                           np.zeros(3, dtype=bool))

    def test_rejects_loaded_healing_core(self):
        with pytest.raises(SimulationError):
            CoreAssignment(np.array([0.5]), np.array([True]),
                           np.array([False]))

    def test_rejects_out_of_range_utilization(self):
        with pytest.raises(SimulationError):
            CoreAssignment(np.array([1.5]), np.array([False]),
                           np.array([False]))


class TestNoRecoveryPolicy:
    def test_spreads_demand_evenly(self):
        assignment = NoRecoveryPolicy().assign(0, 4.0, AGES)
        assert np.allclose(assignment.utilization, 0.5)
        assert not assignment.bti_recovering.any()
        assert assignment.dropped_demand == 0.0

    def test_saturates_at_full_utilization(self):
        assignment = NoRecoveryPolicy().assign(0, 12.0, AGES)
        assert np.allclose(assignment.utilization, 1.0)
        assert assignment.dropped_demand == pytest.approx(4.0)


class TestRoundRobinPolicy:
    def test_rotates_the_healing_window(self):
        policy = RoundRobinRecoveryPolicy(recovery_slots=2,
                                          em_alternate_every=0)
        first = policy.assign(0, 4.0, AGES)
        second = policy.assign(1, 4.0, AGES)
        assert first.bti_recovering.sum() == 2
        assert second.bti_recovering.sum() == 2
        assert not np.array_equal(first.bti_recovering,
                                  second.bti_recovering)

    def test_every_core_eventually_heals(self):
        policy = RoundRobinRecoveryPolicy(recovery_slots=1,
                                          em_alternate_every=0)
        healed = np.zeros(N, dtype=bool)
        for epoch in range(N):
            healed |= policy.assign(epoch, 4.0, AGES).bti_recovering
        assert healed.all()

    def test_demand_migrates_to_active_cores(self):
        policy = RoundRobinRecoveryPolicy(recovery_slots=2,
                                          em_alternate_every=0)
        assignment = policy.assign(0, 6.0, AGES)
        active = ~assignment.bti_recovering
        assert np.allclose(assignment.utilization[active], 1.0)
        assert np.all(assignment.utilization[~active] == 0.0)

    def test_em_alternation_cadence(self):
        policy = RoundRobinRecoveryPolicy(recovery_slots=0,
                                          em_alternate_every=2)
        with_em = policy.assign(0, 4.0, AGES)
        without_em = policy.assign(1, 4.0, AGES)
        assert with_em.em_recovering.any()
        assert not without_em.em_recovering.any()

    def test_rejects_all_cores_healing(self):
        policy = RoundRobinRecoveryPolicy(recovery_slots=N)
        with pytest.raises(SimulationError):
            policy.assign(0, 1.0, AGES)


class TestDarkSiliconPolicy:
    def make_policy(self, **kwargs) -> DarkSiliconRotationPolicy:
        chip = Chip(2, 4)
        return DarkSiliconRotationPolicy(chip=chip, n_dark=2,
                                         em_alternate_every=0,
                                         **kwargs)

    def test_darkens_the_most_aged_cores(self):
        policy = self.make_policy(heat_aware=False, dwell_epochs=1)
        assignment = policy.assign(0, 4.0, AGES)
        dark = np.nonzero(assignment.bti_recovering)[0]
        assert set(dark) == {N - 1, N - 2}

    def test_dwell_keeps_the_dark_set_stable(self):
        policy = self.make_policy(heat_aware=False, dwell_epochs=3)
        first = policy.assign(0, 4.0, AGES)
        second = policy.assign(1, 4.0, AGES)
        assert np.array_equal(first.bti_recovering,
                              second.bti_recovering)

    def test_rotation_after_dwell(self):
        policy = self.make_policy(heat_aware=False, dwell_epochs=1)
        ages = AGES.copy()
        first = policy.assign(0, 4.0, ages)
        # The healed cores become fresh; others age.
        ages[first.bti_recovering] = 0.0
        ages[~first.bti_recovering] += 0.05
        second = policy.assign(1, 4.0, ages)
        assert not np.array_equal(first.bti_recovering,
                                  second.bti_recovering)

    def test_heat_aware_prefers_hot_neighbourhoods(self):
        policy = self.make_policy(heat_aware=True, dwell_epochs=1,
                                  age_weight=0.0)
        # Cores around index 1 are busy; far cores idle.
        previous = np.zeros(N)
        previous[[0, 2, 5]] = 1.0
        assignment = policy.assign(0, 2.0, np.zeros(N), previous)
        dark = set(np.nonzero(assignment.bti_recovering)[0])
        assert 1 in dark

    def test_demand_spread_over_active_cores(self):
        policy = self.make_policy(heat_aware=False, dwell_epochs=1)
        assignment = policy.assign(0, 3.0, AGES)
        active = ~assignment.bti_recovering
        assert np.allclose(assignment.utilization[active], 0.5)

    def test_rejects_all_dark(self):
        chip = Chip(2, 2)
        with pytest.raises(SimulationError):
            DarkSiliconRotationPolicy(chip=chip, n_dark=4)

    def test_rejects_wrong_age_vector(self):
        policy = self.make_policy()
        with pytest.raises(SimulationError):
            policy.assign(0, 1.0, np.zeros(3))
