"""Tests for repro.bti.experiment (frequency-domain harness)."""

import pytest

from repro import units
from repro.bti.conditions import (
    ACTIVE_ACCELERATED_RECOVERY,
    PASSIVE_RECOVERY,
    TABLE1_RECOVERY_CONDITIONS,
)
from repro.bti.experiment import FrequencyDomainExperiment
from repro.errors import SensorError
from repro.sensors.ring_oscillator import RingOscillator


def make_experiment(calibration, **kwargs) -> FrequencyDomainExperiment:
    return FrequencyDomainExperiment(
        model=calibration.build_model(), **kwargs)


class TestProtocol:
    def test_frequency_drops_under_stress(self, calibration):
        experiment = make_experiment(calibration)
        experiment.run_table1_protocol(PASSIVE_RECOVERY)
        fresh, stressed, recovered = [m.frequency_hz
                                      for m in experiment.log]
        assert stressed < fresh
        assert stressed <= recovered <= fresh

    def test_frequency_recovery_tracks_shift_recovery(self, calibration):
        """Table I in the frequency domain lands close to the
        shift-domain calibration (the mapping is locally linear)."""
        experiment = make_experiment(calibration)
        fraction = experiment.run_table1_protocol(
            ACTIVE_ACCELERATED_RECOVERY)
        assert fraction == pytest.approx(0.724, abs=0.04)

    def test_condition_ordering_survives_the_mapping(self, calibration):
        fractions = []
        for condition in TABLE1_RECOVERY_CONDITIONS:
            experiment = make_experiment(calibration)
            fractions.append(
                experiment.run_table1_protocol(condition))
        assert fractions[0] < fractions[1] < fractions[3]
        assert fractions[0] < fractions[2] < fractions[3]

    def test_log_records_all_phases(self, calibration):
        experiment = make_experiment(calibration)
        experiment.run_table1_protocol(PASSIVE_RECOVERY)
        assert [m.phase for m in experiment.log] == [
            "fresh", "stress", "recovery"]

    def test_quantization_limits_resolution(self, calibration):
        experiment = make_experiment(calibration, gate_window_s=1e-3)
        measurement = experiment.measure("fresh")
        assert measurement.frequency_hz % 1000.0 == pytest.approx(0.0)

    def test_recovery_trace_is_monotone(self, calibration):
        experiment = make_experiment(calibration)
        experiment.model.apply_stress(units.hours(24.0))
        samples = experiment.frequency_recovery_trace(
            ACTIVE_ACCELERATED_RECOVERY, units.hours(6.0), n_points=7)
        frequencies = [s.frequency_hz for s in samples]
        assert all(b >= a - 1e-6 for a, b in zip(frequencies,
                                                 frequencies[1:]))

    def test_custom_oscillator(self, calibration):
        slow_ro = RingOscillator(fresh_frequency_hz=10e6)
        experiment = make_experiment(calibration, oscillator=slow_ro)
        assert experiment.measure("fresh").frequency_hz \
            == pytest.approx(10e6)

    def test_rejects_bad_gate_window(self, calibration):
        with pytest.raises(SensorError):
            make_experiment(calibration, gate_window_s=-1.0)

    def test_rejects_short_trace(self, calibration):
        experiment = make_experiment(calibration)
        with pytest.raises(SensorError):
            experiment.frequency_recovery_trace(
                ACTIVE_ACCELERATED_RECOVERY, units.hours(1.0),
                n_points=1)
