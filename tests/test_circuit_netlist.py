"""Tests for repro.circuit.netlist and element stamps."""

import numpy as np
import pytest

from repro.circuit.elements import MnaSystem
from repro.circuit.mosfet import NMOS_28NM
from repro.circuit.netlist import Circuit, GROUND
from repro.errors import NetlistError


class TestNodeManagement:
    def test_ground_aliases_map_to_minus_one(self):
        circuit = Circuit()
        assert circuit.node("gnd") == -1
        assert circuit.node("0") == -1
        assert circuit.node("GND") == -1

    def test_nodes_are_created_on_demand(self):
        circuit = Circuit()
        assert circuit.node("a") == 0
        assert circuit.node("b") == 1
        assert circuit.node("a") == 0
        assert circuit.n_nodes == 2

    def test_node_names_in_index_order(self):
        circuit = Circuit()
        circuit.node("z")
        circuit.node("a")
        assert circuit.node_names == ["z", "a"]


class TestElementRegistration:
    def test_duplicate_names_rejected(self):
        circuit = Circuit()
        circuit.add_resistor("r1", "a", "b", 10.0)
        with pytest.raises(NetlistError):
            circuit.add_resistor("r1", "b", "c", 10.0)

    def test_duplicate_across_types_rejected(self):
        circuit = Circuit()
        circuit.add_resistor("x", "a", "b", 10.0)
        with pytest.raises(NetlistError):
            circuit.add_voltage_source("x", "a", GROUND, 1.0)

    def test_non_positive_resistance_rejected(self):
        circuit = Circuit()
        with pytest.raises(NetlistError):
            circuit.add_resistor("r", "a", "b", 0.0)

    def test_non_positive_capacitance_rejected(self):
        circuit = Circuit()
        with pytest.raises(NetlistError):
            circuit.add_capacitor("c", "a", "b", -1e-12)

    def test_lookup_helpers(self):
        circuit = Circuit()
        circuit.add_resistor("r", "a", "b", 10.0)
        circuit.add_voltage_source("v", "a", GROUND, 1.0)
        circuit.add_mosfet("m", "a", "b", GROUND, NMOS_28NM)
        assert circuit.find_resistor("r").ohms == 10.0
        assert circuit.find_voltage_source("v").volts == 1.0
        assert circuit.find_mosfet("m").name == "m"

    def test_lookup_missing_raises(self):
        circuit = Circuit()
        with pytest.raises(NetlistError):
            circuit.find_resistor("nope")

    def test_unknown_counts(self):
        circuit = Circuit()
        circuit.add_voltage_source("v1", "a", GROUND, 1.0)
        circuit.add_resistor("r", "a", "b", 10.0)
        assert circuit.n_unknowns == 2 + 1  # two nodes + one branch


class TestMnaStamps:
    def test_conductance_stamp_symmetry(self):
        system = MnaSystem(2, 0)
        system.add_conductance(0, 1, 0.5)
        expected = np.array([[0.5, -0.5], [-0.5, 0.5]])
        assert np.allclose(system.matrix, expected)

    def test_conductance_to_ground(self):
        system = MnaSystem(1, 0)
        system.add_conductance(0, -1, 2.0)
        assert system.matrix[0, 0] == pytest.approx(2.0)

    def test_current_stamp_signs(self):
        system = MnaSystem(2, 0)
        system.add_current(0, 1, 1e-3)
        assert system.rhs[0] == pytest.approx(-1e-3)
        assert system.rhs[1] == pytest.approx(1e-3)

    def test_voltage_branch_stamp(self):
        system = MnaSystem(1, 1)
        system.add_voltage_branch(0, 0, -1, 1.5)
        assert system.matrix[0, 1] == 1.0
        assert system.matrix[1, 0] == 1.0
        assert system.rhs[1] == 1.5

    def test_transconductance_stamp(self):
        system = MnaSystem(3, 0)
        system.add_transconductance(0, 1, 2, -1, 1e-3)
        assert system.matrix[0, 2] == pytest.approx(1e-3)
        assert system.matrix[1, 2] == pytest.approx(-1e-3)
