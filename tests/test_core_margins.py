"""Tests for repro.core.margins (guardband arithmetic, Fig. 12b)."""

import numpy as np
import pytest

from repro import units
from repro.bti.conditions import BtiStressCondition, PASSIVE_RECOVERY
from repro.core.margins import GuardbandModel
from repro.errors import SimulationError


USE_STRESS = BtiStressCondition(
    voltage=0.45, temperature_k=units.celsius_to_kelvin(60.0),
    name="use")


@pytest.fixture(scope="module")
def model() -> GuardbandModel:
    return GuardbandModel()


class TestWorstCaseMargin:
    def test_margin_grows_with_lifetime(self, model):
        assert model.margin_without_recovery(units.years(10), USE_STRESS) \
            > model.margin_without_recovery(units.years(1), USE_STRESS)

    def test_ten_year_margin_is_percent_scale(self, model):
        margin = model.margin_without_recovery(units.years(10),
                                               USE_STRESS)
        assert 0.01 < margin < 0.20

    def test_rejects_non_positive_lifetime(self, model):
        with pytest.raises(SimulationError):
            model.margin_without_recovery(0.0, USE_STRESS)


class TestHealedMargin:
    def test_healing_shrinks_the_margin(self, model):
        comparison = model.compare(units.years(10), USE_STRESS)
        assert comparison.healed_margin < comparison.worst_case_margin

    def test_reduction_is_substantial(self, model):
        """Deep healing removes most of the wearout guardband."""
        comparison = model.compare(units.years(10), USE_STRESS)
        assert comparison.reduction > 0.5

    def test_margin_never_negative(self, model):
        comparison = model.compare(units.years(10), USE_STRESS)
        assert comparison.healed_margin >= 0.0

    def test_passive_recovery_helps_much_less(self, model):
        active = model.margin_with_schedule(
            units.years(10), USE_STRESS, units.hours(1.0),
            units.hours(1.0))
        passive = model.margin_with_schedule(
            units.years(10), USE_STRESS, units.hours(1.0),
            units.hours(1.0), recovery=PASSIVE_RECOVERY)
        assert passive > active

    def test_long_stress_intervals_erode_the_benefit(self, model):
        balanced = model.margin_with_schedule(
            units.years(10), USE_STRESS, units.hours(1.0),
            units.hours(1.0))
        lazy = model.margin_with_schedule(
            units.years(10), USE_STRESS, units.hours(24.0),
            units.hours(1.0))
        assert lazy > balanced

    def test_describe_mentions_reduction(self, model):
        comparison = model.compare(units.years(10), USE_STRESS)
        assert "reduction" in comparison.describe()


class TestTimeline:
    def test_timeline_shapes(self, model):
        times, without, with_healing = model.degradation_timeline(
            units.years(5), USE_STRESS, units.hours(1.0),
            units.hours(1.0), n_points=20)
        assert len(times) == len(without) == len(with_healing) == 20

    def test_no_recovery_curve_grows(self, model):
        _times, without, _healed = model.degradation_timeline(
            units.years(5), USE_STRESS, units.hours(1.0),
            units.hours(1.0), n_points=20)
        assert np.all(np.diff(without) > 0.0)

    def test_healed_curve_stays_below(self, model):
        """Fig. 12(b): the healed performance envelope stays near
        fresh while the unhealed one decays."""
        _times, without, healed = model.degradation_timeline(
            units.years(5), USE_STRESS, units.hours(1.0),
            units.hours(1.0), n_points=20)
        assert np.all(healed <= without + 1e-12)
        assert healed[-1] < 0.5 * without[-1]

    def test_rejects_too_few_points(self, model):
        with pytest.raises(SimulationError):
            model.degradation_timeline(
                units.years(1), USE_STRESS, units.hours(1.0),
                units.hours(1.0), n_points=1)
