"""Tests for repro.sensors (RO, BTI sensor, EM sensor)."""

import pytest

from repro import units
from repro.errors import SensorError
from repro.sensors.bti_sensor import BtiSensor
from repro.sensors.em_sensor import EmResistanceSensor
from repro.sensors.ring_oscillator import RingOscillator


class TestRingOscillator:
    def test_fresh_frequency(self):
        ro = RingOscillator()
        assert ro.frequency_hz(0.0) == pytest.approx(
            ro.fresh_frequency_hz)

    def test_shift_slows_the_oscillator(self):
        ro = RingOscillator()
        assert ro.frequency_hz(0.03) < ro.fresh_frequency_hz

    def test_degradation_monotone_in_shift(self):
        ro = RingOscillator()
        assert ro.frequency_degradation(0.05) \
            > ro.frequency_degradation(0.01) > 0.0

    def test_inversion_roundtrip(self):
        ro = RingOscillator()
        shift = 0.042
        assert ro.infer_delta_vth_v(
            ro.frequency_hz(shift)) == pytest.approx(shift, rel=1e-9)

    def test_above_fresh_frequency_reads_zero_shift(self):
        ro = RingOscillator()
        assert ro.infer_delta_vth_v(ro.fresh_frequency_hz * 1.01) == 0.0

    def test_overdrive_exhaustion_stops_oscillation(self):
        ro = RingOscillator()
        assert ro.frequency_hz(ro.supply_v - ro.fresh_vth_v + 0.1) == 0.0

    def test_delay_degradation_relates_to_frequency(self):
        ro = RingOscillator()
        shift = 0.02
        expected = ro.fresh_frequency_hz / ro.frequency_hz(shift) - 1.0
        assert ro.delay_degradation(shift) == pytest.approx(expected)

    def test_rejects_negative_shift(self):
        with pytest.raises(SensorError):
            RingOscillator().frequency_hz(-0.01)

    def test_rejects_supply_below_threshold(self):
        with pytest.raises(SensorError):
            RingOscillator(supply_v=0.2, fresh_vth_v=0.3)


class _FakeBtiTarget:
    def __init__(self, delta: float):
        self.delta_vth_v = delta


class TestBtiSensor:
    def test_reading_tracks_target(self):
        sensor = BtiSensor(_FakeBtiTarget(0.03))
        reading = sensor.read()
        assert reading.delta_vth_v == pytest.approx(0.03, abs=1e-4)

    def test_quantization_limits_resolution(self):
        sensor = BtiSensor(_FakeBtiTarget(0.0), gate_window_s=1e-3)
        assert sensor.frequency_quantum_hz == pytest.approx(1000.0)
        reading = sensor.read()
        assert reading.frequency_hz % 1000.0 == pytest.approx(0.0)

    def test_noise_is_reproducible_with_seed(self):
        a = BtiSensor(_FakeBtiTarget(0.02), jitter_hz_rms=5e4, seed=7)
        b = BtiSensor(_FakeBtiTarget(0.02), jitter_hz_rms=5e4, seed=7)
        assert a.read().frequency_hz == b.read().frequency_hz

    def test_threshold_trigger(self):
        sensor = BtiSensor(_FakeBtiTarget(0.05))
        assert sensor.exceeds(0.01)
        assert not sensor.exceeds(0.5)

    def test_rejects_bad_threshold(self):
        with pytest.raises(SensorError):
            BtiSensor(_FakeBtiTarget(0.0)).exceeds(1.5)

    def test_rejects_bad_window(self):
        with pytest.raises(SensorError):
            BtiSensor(_FakeBtiTarget(0.0), gate_window_s=0.0)


class _FakeWire:
    def __init__(self):
        self.value = 70.0

    def resistance_ohm(self, temperature_k: float) -> float:
        return self.value


class TestEmResistanceSensor:
    def test_drift_relative_to_first_reading(self):
        wire = _FakeWire()
        sensor = EmResistanceSensor(wire, 500.0)
        sensor.read(0.0)
        wire.value = 70.5
        reading = sensor.read(60.0)
        assert reading.drift_ohm == pytest.approx(0.5, abs=0.02)

    def test_quantization(self):
        wire = _FakeWire()
        wire.value = 70.004
        sensor = EmResistanceSensor(wire, 500.0, quantum_ohm=0.01)
        assert sensor.read(0.0).resistance_ohm == pytest.approx(70.0)

    def test_slope_detection(self):
        wire = _FakeWire()
        sensor = EmResistanceSensor(wire, 500.0, quantum_ohm=1e-6)
        for minute in range(6):
            wire.value = 70.0 + 0.01 * minute
            sensor.read(units.minutes(minute))
        slope = sensor.slope_ohm_per_s()
        assert slope == pytest.approx(0.01 / 60.0, rel=0.05)

    def test_growth_trigger(self):
        wire = _FakeWire()
        sensor = EmResistanceSensor(wire, 500.0, quantum_ohm=1e-6)
        for minute in range(6):
            wire.value = 70.0 + 0.05 * minute
            sensor.read(units.minutes(minute))
        assert sensor.growth_detected(1e-5)
        assert not sensor.growth_detected(1.0)

    def test_flat_wire_has_no_slope(self):
        sensor = EmResistanceSensor(_FakeWire(), 500.0)
        for minute in range(4):
            sensor.read(units.minutes(minute))
        assert sensor.slope_ohm_per_s() == pytest.approx(0.0, abs=1e-12)

    def test_drift_fraction(self):
        wire = _FakeWire()
        sensor = EmResistanceSensor(wire, 500.0, quantum_ohm=1e-6)
        sensor.read(0.0)
        wire.value = 73.5
        sensor.read(1.0)
        assert sensor.drift_fraction() == pytest.approx(0.05, rel=1e-3)

    def test_rejects_bad_config(self):
        with pytest.raises(SensorError):
            EmResistanceSensor(_FakeWire(), 0.0)
        with pytest.raises(SensorError):
            EmResistanceSensor(_FakeWire(), 500.0, quantum_ohm=0.0)

    def test_rejects_tiny_window(self):
        sensor = EmResistanceSensor(_FakeWire(), 500.0)
        with pytest.raises(SensorError):
            sensor.slope_ohm_per_s(window=1)
