"""Tests for repro.em.ac_stress (frequency-dependent EM healing)."""

import math

import pytest

from repro.em.ac_stress import AcStressModel, effective_current_density


class TestEffectiveCurrentDensity:
    def test_dc_is_identity(self):
        assert effective_current_density(1e10, 1.0) == pytest.approx(1e10)

    def test_unipolar_pulse_scales_with_duty(self):
        assert effective_current_density(1e10, 0.25) == pytest.approx(
            0.25e10)

    def test_symmetric_bipolar_with_perfect_healing_is_zero(self):
        assert effective_current_density(1e10, 0.5, 1e10, 0.5, 1.0) == 0.0

    def test_partial_healing_leaves_residual(self):
        effective = effective_current_density(1e10, 0.5, 1e10, 0.5, 0.8)
        assert effective == pytest.approx(0.1e10)

    def test_net_healing_clips_at_zero(self):
        assert effective_current_density(1e10, 0.2, 1e10, 0.8, 1.0) == 0.0

    def test_rejects_duty_above_one(self):
        with pytest.raises(ValueError):
            effective_current_density(1e10, 0.7, 1e10, 0.5)

    def test_rejects_bad_efficiency(self):
        with pytest.raises(ValueError):
            effective_current_density(1e10, 0.5, 1e10, 0.5, 1.5)


class TestAcStressModel:
    def test_efficiency_rises_with_frequency(self):
        model = AcStressModel()
        assert model.recovery_efficiency(100.0) \
            > model.recovery_efficiency(0.1)

    def test_efficiency_limits(self):
        model = AcStressModel(dc_recovery_efficiency=0.7)
        assert model.recovery_efficiency(0.0) == pytest.approx(0.7)
        assert model.recovery_efficiency(1e12) == pytest.approx(
            1.0, abs=1e-6)

    def test_lifetime_increases_with_frequency(self):
        """Tao et al. 1996: AC lifetime increases with frequency."""
        model = AcStressModel()
        low = model.lifetime_enhancement(1e10, 1.0)
        high = model.lifetime_enhancement(1e10, 1e6)
        assert high > low > 1.0

    def test_orders_of_magnitude_at_high_frequency(self):
        """Abella & Vera 2010: healing buys orders of magnitude."""
        model = AcStressModel()
        assert model.lifetime_enhancement(1e10, 1e9) > 1e3

    def test_effective_density_monotone_in_frequency(self):
        model = AcStressModel()
        assert model.effective_density(1e10, 1e6) \
            < model.effective_density(1e10, 1.0)

    def test_rejects_negative_frequency(self):
        with pytest.raises(ValueError):
            AcStressModel().recovery_efficiency(-1.0)

    def test_rejects_non_positive_density(self):
        with pytest.raises(ValueError):
            AcStressModel().lifetime_enhancement(0.0, 1.0)

    def test_rejects_bad_dc_efficiency(self):
        with pytest.raises(ValueError):
            AcStressModel(dc_recovery_efficiency=1.0)
