"""Tests for repro.bti.duty (signal-probability stress bookkeeping)."""

import pytest

from repro import units
from repro.bti.duty import (
    DutyCycledStressModel,
    rebalancing_gain,
    stress_duty_from_signal_probability,
)
from repro.errors import SimulationError


class TestSignalProbability:
    def test_pmos_stressed_while_input_low(self):
        assert stress_duty_from_signal_probability(0.0, "pmos") == 1.0
        assert stress_duty_from_signal_probability(1.0, "pmos") == 0.0

    def test_nmos_stressed_while_input_high(self):
        assert stress_duty_from_signal_probability(1.0, "nmos") == 1.0
        assert stress_duty_from_signal_probability(0.0, "nmos") == 0.0

    def test_complementary_duties(self):
        p = 0.3
        assert stress_duty_from_signal_probability(p, "pmos") \
            + stress_duty_from_signal_probability(p, "nmos") \
            == pytest.approx(1.0)

    def test_rejects_bad_probability(self):
        with pytest.raises(SimulationError):
            stress_duty_from_signal_probability(1.5, "pmos")

    def test_rejects_bad_polarity(self):
        with pytest.raises(SimulationError):
            stress_duty_from_signal_probability(0.5, "cmos")


class TestDutyCycledStress:
    def test_zero_duty_means_zero_shift(self):
        model = DutyCycledStressModel()
        assert model.shift(units.years(1.0), 0.0) == 0.0

    def test_full_duty_matches_dc_times_attenuation(self):
        model = DutyCycledStressModel(ac_attenuation=0.9)
        dc = model.stress_model.shift(units.years(1.0))
        assert model.shift(units.years(1.0), 1.0) == pytest.approx(
            0.9 * dc)

    def test_shift_monotone_in_duty(self):
        model = DutyCycledStressModel()
        low = model.shift(units.years(1.0), 0.2)
        high = model.shift(units.years(1.0), 0.8)
        assert high > low > 0.0

    def test_duty_halving_is_weak(self):
        """Power-law time dependence makes duty reduction a weak knob:
        halving the duty removes only 1 - 0.5^n of the shift."""
        model = DutyCycledStressModel()
        full = model.shift(units.years(1.0), 1.0)
        half = model.shift(units.years(1.0), 0.5)
        exponent = model.stress_model.exponent
        assert half / full == pytest.approx(0.5 ** exponent, rel=1e-9)

    def test_signal_probability_entry_point(self):
        model = DutyCycledStressModel()
        direct = model.shift(units.years(1.0), 0.25)
        via_probability = model.shift_from_signal_probability(
            units.years(1.0), 0.75, "pmos")
        assert via_probability == pytest.approx(direct)

    def test_rejects_bad_duty(self):
        with pytest.raises(SimulationError):
            DutyCycledStressModel().shift(1.0, 1.5)

    def test_rejects_bad_attenuation(self):
        with pytest.raises(SimulationError):
            DutyCycledStressModel(ac_attenuation=0.0)


class TestRebalancingGain:
    def test_gain_is_small_for_power_law(self):
        """The paper's implicit argument: rebalancing alone cannot
        match active recovery because the gain is sub-linear."""
        model = DutyCycledStressModel()
        gain = rebalancing_gain(model, units.years(10.0), 0.9, 0.45)
        assert 0.0 < gain < 0.2

    def test_bigger_rebalance_bigger_gain(self):
        model = DutyCycledStressModel()
        small = rebalancing_gain(model, units.years(1.0), 0.9, 0.6)
        large = rebalancing_gain(model, units.years(1.0), 0.9, 0.1)
        assert large > small

    def test_no_rebalance_no_gain(self):
        model = DutyCycledStressModel()
        assert rebalancing_gain(model, units.years(1.0), 0.5, 0.5) \
            == pytest.approx(0.0)

    def test_rejects_zero_baseline(self):
        model = DutyCycledStressModel()
        with pytest.raises(SimulationError):
            rebalancing_gain(model, units.years(1.0), 0.0, 0.5)
