"""Tests for repro.em.blech (short-length immortality)."""

import pytest

from repro import units
from repro.em.blech import (
    assess,
    blech_product_a_per_m,
    critical_length_m,
    is_immortal,
    saturation_stress_pa,
)
from repro.em.korhonen import KorhonenConfig, KorhonenSolver
from repro.em.line import EmStressCondition, PAPER_EM_STRESS
from repro.em.lumped import LumpedEmModel
from repro.em.wire import COPPER, PAPER_TEST_WIRE, Wire
from repro.errors import SimulationError

HOT = units.celsius_to_kelvin(230.0)


class TestCriterion:
    def test_blech_product_is_physical(self):
        """Order-of-magnitude check against experiment.

        Reported Cu Blech products span roughly 1e3-1e4 A/cm; our
        value is set by the Fig. 5-calibrated critical stress, which
        lands within a small factor of that band.
        """
        product = blech_product_a_per_m(COPPER, HOT)
        a_per_cm = product / 100.0
        assert 1e3 < a_per_cm < 1e5

    def test_paper_test_wire_is_mortal(self):
        """The paper's 2.673 mm wire fails -- far past the criterion."""
        assessment = assess(PAPER_TEST_WIRE, PAPER_EM_STRESS)
        assert not assessment.immortal
        assert assessment.jl_product_a_per_m \
            > 10.0 * assessment.jl_critical_a_per_m

    def test_short_segment_is_immortal(self):
        critical = critical_length_m(
            COPPER, PAPER_EM_STRESS.current_density_a_m2, HOT)
        short = Wire(length_m=0.5 * critical, name="short segment")
        assert is_immortal(short, PAPER_EM_STRESS)

    def test_critical_length_scales_inversely_with_current(self):
        full = critical_length_m(COPPER, units.ma_per_cm2(8.0), HOT)
        half = critical_length_m(COPPER, units.ma_per_cm2(4.0), HOT)
        assert half == pytest.approx(2.0 * full, rel=1e-9)

    def test_zero_current_always_immortal(self):
        assert critical_length_m(COPPER, 0.0, HOT) == float("inf")

    def test_saturation_stress_is_half_gl(self):
        stress = saturation_stress_pa(PAPER_TEST_WIRE, PAPER_EM_STRESS)
        gradient = COPPER.wind_stress_gradient(
            PAPER_EM_STRESS.current_density_a_m2, HOT)
        assert stress == pytest.approx(
            gradient * PAPER_TEST_WIRE.length_m / 2.0)

    def test_rejects_bad_temperature(self):
        with pytest.raises(SimulationError):
            blech_product_a_per_m(COPPER, 0.0)


class TestConsistencyWithSolvers:
    def test_immortal_wire_never_reaches_critical_in_the_pde(self):
        """Korhonen steady state equals the Blech back stress: a wire
        below the criterion saturates below sigma_c."""
        critical = critical_length_m(
            COPPER, PAPER_EM_STRESS.current_density_a_m2, HOT)
        length = 0.8 * critical
        solver = KorhonenSolver(length, KorhonenConfig(n_nodes=101,
                                                       max_dt_s=5.0))
        kappa = COPPER.stress_diffusivity_at(HOT)
        gradient = COPPER.wind_stress_gradient(
            PAPER_EM_STRESS.current_density_a_m2, HOT)
        # Integrate several diffusion times: effectively steady state.
        diffusion_time = length * length / kappa
        solver.advance(5.0 * diffusion_time, kappa, gradient)
        assert solver.stress_at_start < COPPER.critical_stress_pa
        expected = saturation_stress_pa(
            Wire(length_m=length), PAPER_EM_STRESS)
        assert solver.stress_at_start == pytest.approx(expected,
                                                       rel=0.02)

    def test_mortal_wire_nucleates_in_the_lumped_model(self):
        assessment = assess(PAPER_TEST_WIRE, PAPER_EM_STRESS)
        assert not assessment.immortal
        t_nuc = LumpedEmModel(PAPER_TEST_WIRE).nucleation_time(
            PAPER_EM_STRESS)
        assert t_nuc < float("inf")

    def test_margin_sign_convention(self):
        critical = critical_length_m(
            COPPER, PAPER_EM_STRESS.current_density_a_m2, HOT)
        immortal = assess(Wire(length_m=0.5 * critical),
                          PAPER_EM_STRESS)
        mortal = assess(Wire(length_m=2.0 * critical),
                        PAPER_EM_STRESS)
        assert immortal.stress_margin > 0.0
        assert mortal.stress_margin < 0.0

    def test_describe_mentions_verdict(self):
        text = assess(PAPER_TEST_WIRE, PAPER_EM_STRESS).describe()
        assert "mortal" in text
