"""Snapshot format, incremental sessions and checkpointed studies.

The checkpoint layer promises (ISSUE 10 / PR 10):

* **a versioned, checksummed snapshot format** -- torn, tampered,
  foreign or wrong-schema files fail loudly as ``CheckpointError``,
  never load as skewed state;
* **bitwise resume** -- a :class:`FleetSession` restored from a
  snapshot (in-memory or from disk, float64 or float32 state,
  homogeneous or heterogeneous groups) continues bit-identically to a
  session that was never interrupted;
* **study fingerprinting** -- a checkpoint directory is pinned to one
  study's SHA-256 digest, so resuming a *different* study against it
  is refused instead of mixing state.

Kill-and-resume of whole studies (SIGKILL mid-lifetime, pooled
workers) lives in tests/test_checkpoint_resume.py.
"""

from __future__ import annotations

import os
import pickle

import numpy as np
import pytest

import repro.system.checkpoint as checkpoint_module
from repro.errors import CheckpointError, SimulationError
from repro.system.checkpoint import (
    FleetSession,
    FleetSnapshot,
    read_snapshot,
    resume_fleet_lifetime_study,
    write_snapshot,
)
from repro.system.chip import Chip
from repro.system.fleet import (
    FleetGroup,
    FleetSimulator,
    FleetVariationSpec,
    run_fleet_lifetime_study,
)
from repro.system.scheduler import (
    NoRecoveryPolicy,
    RoundRobinRecoveryPolicy,
)
from repro.system.workload import ConstantWorkload, RandomWorkload

N_CORES = 4  # 2x2 grid

RESULT_ARRAYS = (
    "times_s", "worst_degradation", "mean_degradation",
    "dropped_demand", "final_delta_vth_v", "final_permanent_vth_v",
    "final_em_drift_ohm", "em_failures", "migration_events",
    "total_demand", "total_dropped_demand")

VARIATION = FleetVariationSpec(capture_sigma=0.1,
                               recovery_sigma=0.05,
                               em_current_sigma=0.1)


def workload():
    # Stateful AR(1) stream: its RNG position is part of the
    # resumable state, so a restore that dropped it would diverge.
    return RandomWorkload(n_cores=N_CORES, seed=3)


def policy():
    # Stateful rotation cursor, same reasoning.
    return RoundRobinRecoveryPolicy(recovery_slots=1)


def hetero_groups():
    return (
        FleetGroup(n_chips=4, workload=workload(), policy=policy(),
                   phases=(0, 0, 1, 1), name="rotating"),
        FleetGroup(n_chips=2,
                   workload=ConstantWorkload(n_cores=N_CORES,
                                             utilization=0.7),
                   policy=NoRecoveryPolicy(), name="control"),
    )


def make_session(**overrides):
    kwargs = dict(record_every=2, variation=VARIATION, seed=7)
    kwargs.update(overrides)
    if "groups" in kwargs:
        return FleetSession((2, 2), **kwargs)
    return FleetSession((2, 2), 6, workload(), policy(), **kwargs)


def assert_results_bitwise_equal(a, b):
    for field in RESULT_ARRAYS:
        left, right = getattr(a, field), getattr(b, field)
        assert left.dtype == right.dtype, field
        assert np.array_equal(left, right), field
    assert a.n_epochs == b.n_epochs


# -- the snapshot file format ----------------------------------------------


class TestSnapshotFormat:
    ARRAYS = {
        "a/f64": np.linspace(0.0, 1.0, 7),
        "a/f32": np.linspace(0.0, 1.0, 5, dtype=np.float32),
        "b/bool": np.array([True, False, True]),
        "b/i64": np.arange(6, dtype=np.int64).reshape(2, 3),
        "c/bytes": np.frombuffer(b"pickled payload", dtype=np.uint8),
    }
    META = {"kind": "test", "epoch": 3, "nested": {"x": [1, 2]}}

    def test_round_trip_is_bitwise(self, tmp_path):
        path = tmp_path / "snap.npz"
        write_snapshot(path, self.ARRAYS, self.META)
        arrays, meta = read_snapshot(path)
        assert meta == self.META
        assert set(arrays) == set(self.ARRAYS)
        for name, original in self.ARRAYS.items():
            assert arrays[name].dtype == original.dtype, name
            assert np.array_equal(arrays[name], original), name

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        write_snapshot(tmp_path / "snap.npz", self.ARRAYS, self.META)
        assert os.listdir(tmp_path) == ["snap.npz"]

    def test_reserved_and_non_array_names_rejected(self, tmp_path):
        with pytest.raises(CheckpointError, match="reserved"):
            write_snapshot(tmp_path / "bad.npz",
                           {"__meta__": np.zeros(1)}, {})
        with pytest.raises(CheckpointError, match="not an ndarray"):
            write_snapshot(tmp_path / "bad.npz", {"x": [1, 2]}, {})

    def test_missing_and_garbage_files_rejected(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            read_snapshot(tmp_path / "nope.npz")
        garbage = tmp_path / "garbage.npz"
        garbage.write_bytes(b"this is not a zip archive")
        with pytest.raises(CheckpointError, match="cannot read"):
            read_snapshot(garbage)

    def test_foreign_npz_rejected(self, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path, x=np.zeros(3))
        with pytest.raises(CheckpointError,
                           match="not a fleet checkpoint"):
            read_snapshot(path)

    def test_schema_version_gate_is_strict(self, tmp_path,
                                           monkeypatch):
        path = tmp_path / "future.npz"
        monkeypatch.setattr(checkpoint_module,
                            "CHECKPOINT_SCHEMA_VERSION", 2)
        write_snapshot(path, self.ARRAYS, self.META)
        monkeypatch.undo()
        with pytest.raises(CheckpointError, match="schema"):
            read_snapshot(path)

    def test_tampered_array_fails_the_checksum(self, tmp_path):
        path = tmp_path / "snap.npz"
        write_snapshot(path, self.ARRAYS, self.META)
        with np.load(path, allow_pickle=False) as data:
            payload = {name: data[name] for name in data.files}
        tampered = payload["a/f64"].copy()
        tampered[0] += 1e-9
        payload["a/f64"] = tampered
        np.savez(path, **payload)  # keeps the stale checksum
        with pytest.raises(CheckpointError, match="checksum"):
            read_snapshot(path)

    def test_fleet_snapshot_object_round_trips(self, tmp_path):
        path = tmp_path / "snap.npz"
        FleetSnapshot(arrays=dict(self.ARRAYS),
                      meta=dict(self.META)).save(path)
        loaded = FleetSnapshot.load(path)
        assert loaded.meta == self.META
        assert np.array_equal(loaded.arrays["b/i64"],
                              self.ARRAYS["b/i64"])


# -- incremental sessions ---------------------------------------------------


class TestFleetSession:
    def test_session_matches_one_shot_run_groups(self):
        session = make_session().advance(6)
        result = session.result()
        simulator = FleetSimulator(Chip(2, 2), 6,
                                   variation=VARIATION, seed=7)
        reference = simulator.run_groups(
            6, [FleetGroup(n_chips=6, workload=workload(),
                           policy=policy())], record_every=2)
        assert_results_bitwise_equal(result, reference)

    def test_split_advance_equals_one_advance(self):
        split = make_session().advance(2).advance(1).advance(3)
        whole = make_session().advance(6)
        assert_results_bitwise_equal(split.result(), whole.result())

    def test_queries_between_advances_do_not_perturb(self):
        probed = make_session()
        for _ in range(3):
            probed.advance(2)
            probed.delta_vth_quantile(0.5)
            probed.guardband_quantile(0.99)
            probed.delta_vth_v()
            probed.guardbands
        clean = make_session().advance(6)
        assert_results_bitwise_equal(probed.result(), clean.result())

    @pytest.mark.parametrize("state_dtype", [np.float64, np.float32])
    def test_snapshot_restore_continues_bitwise(self, state_dtype):
        session = make_session(state_dtype=state_dtype).advance(3)
        snapshot = session.snapshot()
        session.advance(3)
        reference = session.result()
        resumed = make_session(state_dtype=state_dtype)
        resumed.restore(snapshot)
        assert resumed.epoch == 3
        resumed.advance(3)
        assert_results_bitwise_equal(resumed.result(), reference)

    def test_restore_rewinds_a_diverged_session(self):
        session = make_session().advance(3)
        snapshot = session.snapshot()
        session.advance(3)
        reference = session.result()
        session.advance(6)  # diverge past the snapshot
        session.restore(snapshot)
        session.advance(3)
        assert_results_bitwise_equal(session.result(), reference)

    def test_save_load_rebuilds_in_a_fresh_session(self, tmp_path):
        path = tmp_path / "session.npz"
        session = make_session().advance(3)
        session.save(path)
        session.advance(3)
        reference = session.result()
        # load() needs no construction arguments: the spec is
        # embedded in the snapshot.
        loaded = FleetSession.load(path)
        assert loaded.epoch == 3
        assert loaded.n_chips == 6 and loaded.n_cores == N_CORES
        loaded.advance(3)
        assert_results_bitwise_equal(loaded.result(), reference)

    def test_heterogeneous_groups_round_trip(self, tmp_path):
        path = tmp_path / "hetero.npz"
        session = make_session(groups=hetero_groups()).advance(3)
        session.save(path)
        session.advance(3)
        reference = session.result()
        loaded = FleetSession.load(path).advance(3)
        assert_results_bitwise_equal(loaded.result(), reference)

    def test_float32_session_snapshot_keeps_dtype(self):
        session = make_session(state_dtype=np.float32).advance(2)
        snapshot = session.snapshot()
        assert snapshot.meta["state_dtype"] == np.dtype(np.float32).str
        assert snapshot.arrays["bti/weights"].dtype == np.float32
        # A float64 session must refuse the float32 snapshot.
        with pytest.raises(CheckpointError, match="state_dtype"):
            make_session().restore(snapshot)

    def test_restore_refuses_a_different_study(self):
        snapshot = make_session().advance(2).snapshot()
        other = FleetSession((2, 2), 9, workload(), policy(),
                             record_every=2, variation=VARIATION,
                             seed=7)
        with pytest.raises(CheckpointError, match="n_chips"):
            other.restore(snapshot)
        cadence = make_session(record_every=3)
        with pytest.raises(CheckpointError, match="record_every"):
            cadence.restore(snapshot)

    def test_guardbands_cover_live_degradation(self):
        session = make_session(record_every=64)  # nothing recorded
        session.advance(3)
        bands = session.guardbands
        assert bands.shape == (6,)
        assert np.all(bands > 0.0)
        assert session.guardband_quantile(1.0) == bands.max()

    def test_validation(self):
        with pytest.raises(SimulationError):
            make_session().advance(0)
        with pytest.raises(SimulationError):
            make_session().delta_vth_quantile(1.5)
        with pytest.raises(SimulationError):
            make_session().guardband_quantile(-0.1)
        with pytest.raises(SimulationError):
            FleetSession((2, 2))  # neither groups nor trio
        with pytest.raises(SimulationError):
            FleetSession((2, 2), 6, workload(), policy(),
                         groups=hetero_groups())
        with pytest.raises(SimulationError):
            make_session().result()  # nothing advanced yet

    def test_load_refuses_a_plain_run_snapshot(self, tmp_path):
        session = make_session().advance(2)
        snapshot = session.snapshot()
        del snapshot.arrays["session/spec"]
        path = tmp_path / "stripped.npz"
        snapshot.save(path)
        with pytest.raises(CheckpointError, match="session spec"):
            FleetSession.load(path)


# -- checkpointed studies ---------------------------------------------------


def run_study(**overrides):
    kwargs = dict(
        n_chips=8, workload=workload(), policy=policy(),
        n_epochs=6, record_every=2, variation=VARIATION, seed=7,
        max_chunk_chips=3, max_workers=0)
    kwargs.update(overrides)
    return run_fleet_lifetime_study((2, 2), **kwargs)


class TestCheckpointedStudy:
    def test_checkpointed_run_matches_plain_run(self, tmp_path):
        plain = run_study()
        checkpointed = run_study(checkpoint_dir=tmp_path / "ckpt",
                                 checkpoint_every=2)
        assert_results_bitwise_equal(plain, checkpointed)

    def test_rerun_restores_every_chunk_from_cache(self, tmp_path):
        directory = tmp_path / "ckpt"
        first = run_study(checkpoint_dir=directory)
        reports = []
        again = run_study(checkpoint_dir=directory,
                          on_report=reports.append)
        assert_results_bitwise_equal(first, again)
        (report,) = reports
        assert report.mode == "fleet"
        assert all(chunk.executed_in == "cached"
                   for chunk in report.chunks)
        assert report.n_chunks == 3

    def test_resume_entry_point_needs_only_the_directory(
            self, tmp_path):
        directory = tmp_path / "ckpt"
        first = run_study(checkpoint_dir=directory)
        resumed = resume_fleet_lifetime_study(directory,
                                              max_workers=0)
        assert_results_bitwise_equal(first, resumed)

    def test_directory_is_pinned_to_one_study(self, tmp_path):
        directory = tmp_path / "ckpt"
        run_study(checkpoint_dir=directory)
        with pytest.raises(CheckpointError, match="different study"):
            run_study(checkpoint_dir=directory, seed=8)

    def test_checkpoint_every_requires_a_directory(self):
        with pytest.raises(SimulationError,
                           match="requires checkpoint_dir"):
            run_study(checkpoint_every=2)

    def test_invalid_cadence_rejected(self, tmp_path):
        with pytest.raises(SimulationError, match="at least 1"):
            run_study(checkpoint_dir=tmp_path / "ckpt",
                      checkpoint_every=0)

    def test_resume_of_an_empty_directory_refused(self, tmp_path):
        with pytest.raises(CheckpointError, match="nothing to resume"):
            resume_fleet_lifetime_study(tmp_path)

    def test_unpicklable_study_refused_up_front(self, tmp_path):
        class Unpicklable(RoundRobinRecoveryPolicy):
            def __reduce__(self):
                raise TypeError("refuses to pickle")

        with pytest.raises(CheckpointError, match="picklable"):
            run_study(policy=Unpicklable(recovery_slots=1),
                      checkpoint_dir=tmp_path / "ckpt")

    def test_chunk_result_files_are_real_snapshots(self, tmp_path):
        directory = tmp_path / "ckpt"
        run_study(checkpoint_dir=directory)
        names = sorted(os.listdir(directory))
        assert names == ["chunk-00000.result.npz",
                         "chunk-00001.result.npz",
                         "chunk-00002.result.npz",
                         "manifest.json", "study.pkl"]
        arrays, meta = read_snapshot(
            directory / "chunk-00001.result.npz")
        assert meta["kind"] == "fleet-chunk-result"
        assert meta["chunk_index"] == 1
        assert arrays["result/final_delta_vth_v"].shape == (3,
                                                            N_CORES)

    def test_study_spec_round_trips_through_pickle(self, tmp_path):
        directory = tmp_path / "ckpt"
        run_study(checkpoint_dir=directory)
        with open(directory / "study.pkl", "rb") as handle:
            spec = pickle.load(handle)
        assert spec["kwargs"]["n_epochs"] == 6
        assert spec["kwargs"]["checkpoint_every"] is None
        assert spec["chip"].rows == 2 and spec["chip"].cols == 2


# -- the lifetime-sweep route ----------------------------------------------


class TestSweepCheckpointRoute:
    GRID = dict(
        policies={"none": NoRecoveryPolicy()},
        workloads={"flat": ConstantWorkload(n_cores=4,
                                            utilization=0.5)},
        chips=[(2, 2)], n_epochs=4, seed=None)

    def test_fleet_route_forwards_checkpointing(self, tmp_path):
        from repro.system.sweeps import run_lifetime_sweep
        directory = tmp_path / "ckpt"
        first = run_lifetime_sweep(checkpoint_dir=directory,
                                   **self.GRID)
        assert (directory / "manifest.json").exists()
        reports = []
        again = run_lifetime_sweep(checkpoint_dir=directory,
                                   on_report=reports.append,
                                   **self.GRID)
        assert all(chunk.executed_in == "cached"
                   for chunk in reports[0].chunks)
        assert [cell.guardband for cell in again.cells] == \
            [cell.guardband for cell in first.cells]

    def test_pooled_engine_refuses_checkpointing(self, tmp_path):
        from repro.system.sweeps import run_lifetime_sweep
        with pytest.raises(SimulationError, match="fleet engine"):
            run_lifetime_sweep(engine="pooled",
                               checkpoint_dir=tmp_path, **self.GRID)

    def test_incompatible_grid_refuses_checkpointing(self, tmp_path):
        from repro.system.sweeps import run_lifetime_sweep
        grid = dict(self.GRID)
        grid["chips"] = [(2, 2), (3, 3)]  # two designs -> pooled path
        with pytest.raises(SimulationError, match="cannot run on it"):
            run_lifetime_sweep(checkpoint_dir=tmp_path, **grid)
