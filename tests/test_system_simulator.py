"""Tests for repro.system.simulator (end-to-end system runs)."""

import numpy as np
import pytest

from repro import units
from repro.errors import SimulationError
from repro.system.chip import Chip
from repro.system.dark_silicon import DarkSiliconRotationPolicy
from repro.system.scheduler import (
    NoRecoveryPolicy,
    RoundRobinRecoveryPolicy,
)
from repro.system.simulator import SystemSimulator
from repro.system.workload import ConstantWorkload

EPOCHS = 48  # two days at 1 h epochs


def run_policy(policy, chip=None, epochs=EPOCHS):
    chip = chip or Chip(2, 2)
    simulator = SystemSimulator(chip)
    workload = ConstantWorkload(n_cores=chip.n_cores, utilization=0.6)
    return simulator.run(epochs, workload, policy, record_every=6)


class TestBaseline:
    def test_wearout_accumulates(self):
        result = run_policy(NoRecoveryPolicy())
        assert result.final_delta_vth_v.max() > 0.0
        assert result.guardband > 0.0

    def test_degradation_series_is_monotone_without_recovery(self):
        result = run_policy(NoRecoveryPolicy())
        assert np.all(np.diff(result.worst_degradation) >= -1e-12)

    def test_uniform_load_ages_cores_equally(self):
        result = run_policy(NoRecoveryPolicy())
        assert np.allclose(result.final_delta_vth_v,
                           result.final_delta_vth_v[0], rtol=1e-6)

    def test_timeline_is_decimated(self):
        result = run_policy(NoRecoveryPolicy())
        assert len(result.times_s) == EPOCHS // 6

    def test_no_demand_is_dropped_at_partial_load(self):
        result = run_policy(NoRecoveryPolicy())
        assert result.lost_demand_fraction == 0.0


class TestRecoveryPolicies:
    def test_round_robin_reduces_permanent_wearout(self):
        baseline = run_policy(NoRecoveryPolicy())
        healed = run_policy(RoundRobinRecoveryPolicy(
            recovery_slots=1, em_alternate_every=2))
        assert healed.final_permanent_vth_v.max() \
            < baseline.final_permanent_vth_v.max()

    def test_round_robin_reduces_guardband(self):
        baseline = run_policy(NoRecoveryPolicy())
        healed = run_policy(RoundRobinRecoveryPolicy(
            recovery_slots=1, em_alternate_every=2))
        assert healed.guardband <= baseline.guardband

    def test_em_alternation_protects_the_grid(self):
        baseline = run_policy(NoRecoveryPolicy())
        healed = run_policy(RoundRobinRecoveryPolicy(
            recovery_slots=1, em_alternate_every=2))
        assert healed.final_em_drift_ohm.max() \
            <= baseline.final_em_drift_ohm.max() + 1e-12

    def test_dark_silicon_policy_runs(self):
        chip = Chip(2, 2)
        result = run_policy(DarkSiliconRotationPolicy(chip=chip,
                                                      n_dark=1),
                            chip=chip)
        assert result.final_delta_vth_v.shape == (4,)

    def test_describe_summarizes(self):
        result = run_policy(NoRecoveryPolicy())
        text = result.describe()
        assert "guardband" in text
        assert "EM failures" in text


class TestMigrationAccounting:
    def test_no_recovery_means_no_migrations(self):
        result = run_policy(NoRecoveryPolicy())
        assert result.migration_events == 0
        assert result.migration_overhead() == 0.0

    def test_round_robin_migrates_once_per_rotation(self):
        result = run_policy(RoundRobinRecoveryPolicy(
            recovery_slots=1, em_alternate_every=0))
        # One core enters recovery every epoch (fresh each time).
        assert result.migration_events == EPOCHS

    def test_overhead_is_small(self):
        """Section IV-B expects 'a small switching overhead'."""
        result = run_policy(RoundRobinRecoveryPolicy(
            recovery_slots=1, em_alternate_every=2))
        assert result.migration_overhead() < 0.01

    def test_overhead_scales_with_cost(self):
        result = run_policy(RoundRobinRecoveryPolicy(
            recovery_slots=1, em_alternate_every=0))
        assert result.migration_overhead(0.02) == pytest.approx(
            2.0 * result.migration_overhead(0.01))

    def test_rejects_negative_cost(self):
        result = run_policy(NoRecoveryPolicy())
        with pytest.raises(SimulationError):
            result.migration_overhead(-1.0)


class TestValidation:
    def test_rejects_zero_epochs(self):
        simulator = SystemSimulator(Chip(2, 2))
        with pytest.raises(SimulationError):
            simulator.run(0, ConstantWorkload(n_cores=4),
                          NoRecoveryPolicy())

    def test_rejects_bad_record_every(self):
        simulator = SystemSimulator(Chip(2, 2))
        with pytest.raises(SimulationError):
            simulator.run(10, ConstantWorkload(n_cores=4),
                          NoRecoveryPolicy(), record_every=0)

    def test_rejects_bad_epoch_length(self):
        with pytest.raises(SimulationError):
            SystemSimulator(Chip(2, 2), epoch_s=0.0)
