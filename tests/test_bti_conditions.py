"""Tests for repro.bti.conditions (operating points and acceleration)."""

import pytest

from repro import units
from repro.bti.conditions import (
    ACCELERATED_RECOVERY,
    ACTIVE_ACCELERATED_RECOVERY,
    ACTIVE_RECOVERY,
    BtiRecoveryCondition,
    BtiStressCondition,
    HIGH_TEMPERATURE_K,
    PASSIVE_RECOVERY,
    RecoveryAccelerationParams,
    ROOM_TEMPERATURE_K,
    TABLE1_RECOVERY_CONDITIONS,
    TABLE1_STRESS,
)


@pytest.fixture()
def params() -> RecoveryAccelerationParams:
    return RecoveryAccelerationParams(
        bias_efold_volts=0.06, activation_energy_ev=0.8,
        synergy_coefficient=6.0)


class TestPresets:
    def test_four_table1_conditions(self):
        assert len(TABLE1_RECOVERY_CONDITIONS) == 4

    def test_passive_is_room_and_unbiased(self):
        assert PASSIVE_RECOVERY.gate_bias_v == 0.0
        assert PASSIVE_RECOVERY.temperature_k == pytest.approx(
            ROOM_TEMPERATURE_K)

    def test_active_uses_minus_300mv(self):
        assert ACTIVE_RECOVERY.gate_bias_v == pytest.approx(-0.3)

    def test_accelerated_uses_110c(self):
        assert ACCELERATED_RECOVERY.temperature_k == pytest.approx(
            units.celsius_to_kelvin(110.0))

    def test_flags(self):
        assert not PASSIVE_RECOVERY.is_active
        assert not PASSIVE_RECOVERY.is_accelerated
        assert ACTIVE_RECOVERY.is_active
        assert ACCELERATED_RECOVERY.is_accelerated
        assert ACTIVE_ACCELERATED_RECOVERY.is_active
        assert ACTIVE_ACCELERATED_RECOVERY.is_accelerated


class TestRecoveryConditionValidation:
    def test_rejects_positive_bias(self):
        with pytest.raises(ValueError):
            BtiRecoveryCondition(gate_bias_v=0.2,
                                 temperature_k=ROOM_TEMPERATURE_K)

    def test_rejects_non_positive_temperature(self):
        with pytest.raises(ValueError):
            BtiRecoveryCondition(gate_bias_v=0.0, temperature_k=0.0)


class TestAcceleration:
    def test_passive_acceleration_is_unity(self, params):
        assert PASSIVE_RECOVERY.acceleration(params) == pytest.approx(1.0)

    def test_ordering_matches_paper(self, params):
        """No.1 < No.2, No.3 < No.4 (Table I ordering)."""
        values = [condition.acceleration(params)
                  for condition in TABLE1_RECOVERY_CONDITIONS]
        assert values[0] < values[1] < values[3]
        assert values[0] < values[2] < values[3]

    def test_joint_exceeds_product_with_synergy(self, params):
        """The measured joint gain is super-multiplicative."""
        passive, active, accelerated, joint = [
            condition.acceleration(params)
            for condition in TABLE1_RECOVERY_CONDITIONS]
        assert joint > active * accelerated

    def test_no_synergy_reduces_to_product(self):
        params = RecoveryAccelerationParams(
            bias_efold_volts=0.06, activation_energy_ev=0.8,
            synergy_coefficient=0.0)
        active = ACTIVE_RECOVERY.acceleration(params)
        accelerated = ACCELERATED_RECOVERY.acceleration(params)
        joint = ACTIVE_ACCELERATED_RECOVERY.acceleration(params)
        assert joint == pytest.approx(active * accelerated, rel=1e-9)

    def test_deeper_bias_accelerates_more(self, params):
        shallow = BtiRecoveryCondition(-0.1, ROOM_TEMPERATURE_K)
        deep = BtiRecoveryCondition(-0.3, ROOM_TEMPERATURE_K)
        assert deep.acceleration(params) > shallow.acceleration(params)

    def test_hotter_accelerates_more(self, params):
        warm = BtiRecoveryCondition(0.0, units.celsius_to_kelvin(60.0))
        hot = BtiRecoveryCondition(0.0, HIGH_TEMPERATURE_K)
        assert hot.acceleration(params) > warm.acceleration(params)


class TestAccelerationParamsValidation:
    def test_rejects_non_positive_efold(self):
        with pytest.raises(ValueError):
            RecoveryAccelerationParams(
                bias_efold_volts=0.0, activation_energy_ev=0.5,
                synergy_coefficient=0.0)

    def test_rejects_negative_activation_energy(self):
        with pytest.raises(ValueError):
            RecoveryAccelerationParams(
                bias_efold_volts=0.1, activation_energy_ev=-0.5,
                synergy_coefficient=0.0)


class TestStressCondition:
    def test_reference_acceleration_is_unity(self):
        assert TABLE1_STRESS.capture_acceleration(
            TABLE1_STRESS) == pytest.approx(1.0)

    def test_higher_voltage_stresses_faster(self):
        harder = BtiStressCondition(voltage=0.8,
                                    temperature_k=HIGH_TEMPERATURE_K)
        assert harder.capture_acceleration(TABLE1_STRESS) > 1.0

    def test_lower_temperature_stresses_slower(self):
        cooler = BtiStressCondition(voltage=TABLE1_STRESS.voltage,
                                    temperature_k=ROOM_TEMPERATURE_K)
        assert cooler.capture_acceleration(TABLE1_STRESS) < 1.0

    def test_rejects_negative_voltage(self):
        with pytest.raises(ValueError):
            BtiStressCondition(voltage=-0.1,
                               temperature_k=ROOM_TEMPERATURE_K)
