"""Tests for repro.em.statistics (wire populations, weakest link)."""

import numpy as np
import pytest

from repro import units
from repro.em.blacks import BlacksModel
from repro.em.statistics import (
    WirePopulationSpec,
    healing_gain_at_quantile,
    population_from_blacks,
    sample_population_ttfs,
)
from repro.errors import SimulationError


@pytest.fixture()
def spec() -> WirePopulationSpec:
    return WirePopulationSpec(n_wires=1000,
                              median_ttf_s=units.years(50.0),
                              sigma=0.4)


class TestSingleWire:
    def test_median_is_half_failed(self, spec):
        assert spec.wire_failure_probability(
            spec.median_ttf_s) == pytest.approx(0.5)

    def test_cdf_is_monotone(self, spec):
        early = spec.wire_failure_probability(units.years(10.0))
        late = spec.wire_failure_probability(units.years(100.0))
        assert 0.0 <= early < late <= 1.0

    def test_quantile_inverts_cdf(self, spec):
        t = spec.wire_quantile(0.1)
        assert spec.wire_failure_probability(t) == pytest.approx(
            0.1, abs=1e-9)

    def test_zero_time_never_failed(self, spec):
        assert spec.wire_failure_probability(0.0) == 0.0


class TestWeakestLink:
    def test_chip_fails_before_its_wires(self, spec):
        """A 1000-wire chip's median TTF is far below a wire's."""
        assert spec.chip_median_ttf_s() < 0.5 * spec.median_ttf_s

    def test_single_wire_chip_matches_wire(self):
        solo = WirePopulationSpec(1, units.years(50.0), 0.4)
        assert solo.chip_median_ttf_s() == pytest.approx(
            solo.wire_quantile(0.5), rel=1e-3)

    def test_more_wires_fail_sooner(self):
        small = WirePopulationSpec(100, units.years(50.0), 0.4)
        large = WirePopulationSpec(10000, units.years(50.0), 0.4)
        assert large.chip_median_ttf_s() < small.chip_median_ttf_s()

    def test_chip_quantile_inverts_chip_cdf(self, spec):
        t = spec.chip_quantile(0.01)
        assert spec.chip_failure_probability(t) == pytest.approx(
            0.01, rel=1e-2)

    def test_monte_carlo_agrees_with_closed_form(self, spec):
        population = sample_population_ttfs(spec, n_chips=400, seed=1)
        empirical_median = float(np.median(population))
        assert empirical_median == pytest.approx(
            spec.chip_median_ttf_s(), rel=0.1)

    def test_scaling_shifts_every_quantile(self, spec):
        healed = spec.scaled(3.0)
        assert healed.chip_quantile(0.001) == pytest.approx(
            3.0 * spec.chip_quantile(0.001), rel=1e-6)

    def test_healing_gain_matches_scale_factor(self, spec):
        healed = spec.scaled(2.78)
        assert healing_gain_at_quantile(spec, healed) == pytest.approx(
            2.78, rel=1e-6)


class TestConstruction:
    def test_population_from_blacks(self):
        blacks = BlacksModel.from_reference(
            units.minutes(900.0), units.ma_per_cm2(7.96),
            units.celsius_to_kelvin(230.0))
        spec = population_from_blacks(
            blacks, n_wires=500,
            current_density_a_m2=units.ma_per_cm2(1.0),
            temperature_k=units.celsius_to_kelvin(85.0))
        assert spec.n_wires == 500
        assert spec.median_ttf_s == pytest.approx(
            blacks.ttf_s(units.ma_per_cm2(1.0),
                         units.celsius_to_kelvin(85.0)))

    def test_validation(self):
        with pytest.raises(SimulationError):
            WirePopulationSpec(0, 1.0, 0.4)
        with pytest.raises(SimulationError):
            WirePopulationSpec(10, -1.0, 0.4)
        with pytest.raises(SimulationError):
            WirePopulationSpec(10, 1.0, 0.0)

    def test_rejects_bad_quantiles(self, spec):
        with pytest.raises(SimulationError):
            spec.wire_quantile(0.0)
        with pytest.raises(SimulationError):
            spec.chip_quantile(1.0)

    def test_monte_carlo_reproducible(self, spec):
        a = sample_population_ttfs(spec, n_chips=20, seed=5)
        b = sample_population_ttfs(spec, n_chips=20, seed=5)
        assert np.allclose(a, b)
