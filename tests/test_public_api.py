"""Public-API quality gates.

Every name a package exports through ``__all__`` must resolve, and
every public class/function must carry a docstring -- the "doc comments
on every public item" guarantee, enforced mechanically.
"""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.bti",
    "repro.em",
    "repro.thermal",
    "repro.circuit",
    "repro.pdn",
    "repro.sensors",
    "repro.assist",
    "repro.core",
    "repro.system",
    "repro.analysis",
    "repro.solvers",
]

MODULES = PACKAGES + [
    "repro.units", "repro.errors", "repro.cli",
    "repro.bti.traps", "repro.bti.model", "repro.bti.conditions",
    "repro.bti.calibration", "repro.bti.analytic", "repro.bti.duty",
    "repro.bti.variability", "repro.bti.reaction_diffusion",
    "repro.bti.experiment",
    "repro.em.wire", "repro.em.korhonen", "repro.em.line",
    "repro.em.lumped", "repro.em.blacks", "repro.em.ac_stress",
    "repro.em.statistics", "repro.em.blech", "repro.em.chain",
    "repro.thermal.floorplan", "repro.thermal.network",
    "repro.circuit.elements", "repro.circuit.mosfet",
    "repro.circuit.netlist", "repro.circuit.dc",
    "repro.circuit.transient", "repro.circuit.oscillator",
    "repro.pdn.grid", "repro.pdn.irdrop",
    "repro.sensors.ring_oscillator", "repro.sensors.bti_sensor",
    "repro.sensors.em_sensor",
    "repro.assist.modes", "repro.assist.circuitry",
    "repro.assist.sizing", "repro.assist.area",
    "repro.core.schedule", "repro.core.balance",
    "repro.core.lifetime", "repro.core.margins",
    "repro.core.controller", "repro.core.engine",
    "repro.core.compensation", "repro.core.planner",
    "repro.core.design_space",
    "repro.system.chip", "repro.system.workload",
    "repro.system.scheduler", "repro.system.dark_silicon",
    "repro.system.aging", "repro.system.simulator",
    "repro.system.reliability", "repro.system.checkpoint",
    "repro.analysis.fitting", "repro.analysis.stats",
    "repro.analysis.reporting", "repro.analysis.sensitivity",
    "repro.solvers.factorized", "repro.solvers.sweep",
]


@pytest.mark.parametrize("name", MODULES)
def test_module_imports_and_has_docstring(name):
    module = importlib.import_module(name)
    assert module.__doc__, f"{name} lacks a module docstring"


@pytest.mark.parametrize("name", PACKAGES)
def test_all_exports_resolve(name):
    module = importlib.import_module(name)
    exported = getattr(module, "__all__", [])
    assert exported, f"{name} should declare __all__"
    for symbol in exported:
        assert hasattr(module, symbol), f"{name}.{symbol} missing"


@pytest.mark.parametrize("name", PACKAGES)
def test_public_callables_are_documented(name):
    module = importlib.import_module(name)
    for symbol in getattr(module, "__all__", []):
        obj = getattr(module, symbol)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            assert obj.__doc__, f"{name}.{symbol} lacks a docstring"
            if inspect.isclass(obj):
                for method_name, method in vars(obj).items():
                    if method_name.startswith("_"):
                        continue
                    if inspect.isfunction(method):
                        assert method.__doc__, (
                            f"{name}.{symbol}.{method_name} lacks a "
                            "docstring")
