"""Tests for repro.circuit.dc (Newton DC analysis)."""

import pytest

from repro.circuit.dc import dc_operating_point
from repro.circuit.mosfet import NMOS_28NM, PMOS_28NM
from repro.circuit.netlist import Circuit


def divider() -> Circuit:
    circuit = Circuit("divider")
    circuit.add_voltage_source("vin", "top", "gnd", 2.0)
    circuit.add_resistor("r1", "top", "mid", 1000.0)
    circuit.add_resistor("r2", "mid", "gnd", 3000.0)
    return circuit


class TestLinearCircuits:
    def test_resistor_divider(self):
        solution = dc_operating_point(divider())
        assert solution.voltage("mid") == pytest.approx(1.5)

    def test_source_current(self):
        solution = dc_operating_point(divider())
        # 2 V over 4 kOhm: 0.5 mA flows gnd -> source -> top, i.e. the
        # branch current (pos -> through source) is -0.5 mA.
        assert solution.source_current("vin") == pytest.approx(-5e-4)

    def test_resistor_current(self):
        solution = dc_operating_point(divider())
        assert solution.resistor_current("r1") == pytest.approx(5e-4)

    def test_current_source_injection(self):
        circuit = Circuit()
        circuit.add_current_source("i1", "gnd", "out", 1e-3)
        circuit.add_resistor("r", "out", "gnd", 2000.0)
        solution = dc_operating_point(circuit)
        assert solution.voltage("out") == pytest.approx(2.0)

    def test_superposition_of_linear_sources(self):
        def solve(v, i):
            circuit = Circuit()
            circuit.add_voltage_source("v", "a", "gnd", v)
            circuit.add_resistor("r1", "a", "out", 1000.0)
            circuit.add_current_source("i", "gnd", "out", i)
            circuit.add_resistor("r2", "out", "gnd", 1000.0)
            return dc_operating_point(circuit).voltage("out")

        both = solve(1.0, 1e-3)
        only_v = solve(1.0, 0.0)
        only_i = solve(0.0, 1e-3)
        assert both == pytest.approx(only_v + only_i, rel=1e-9)

    def test_voltages_dict(self):
        solution = dc_operating_point(divider())
        voltages = solution.voltages()
        assert set(voltages) == {"top", "mid"}
        assert voltages["top"] == pytest.approx(2.0)


class TestNonlinearCircuits:
    def test_cmos_inverter_rails(self):
        circuit = Circuit()
        circuit.add_voltage_source("vdd", "vdd", "gnd", 1.0)
        circuit.add_voltage_source("vg", "g", "gnd", 0.0)
        circuit.add_mosfet("mp", "out", "g", "vdd", PMOS_28NM)
        circuit.add_mosfet("mn", "out", "g", "gnd", NMOS_28NM)
        low_in = dc_operating_point(circuit).voltage("out")
        circuit.find_voltage_source("vg").volts = 1.0
        high_in = dc_operating_point(circuit).voltage("out")
        assert low_in == pytest.approx(1.0, abs=1e-3)
        assert high_in == pytest.approx(0.0, abs=1e-3)

    def test_inverter_midpoint_is_metastable(self):
        circuit = Circuit()
        circuit.add_voltage_source("vdd", "vdd", "gnd", 1.0)
        circuit.add_voltage_source("vg", "g", "gnd", 0.5)
        circuit.add_mosfet("mp", "out", "g", "vdd", PMOS_28NM)
        circuit.add_mosfet("mn", "out", "g", "gnd", NMOS_28NM)
        out = dc_operating_point(circuit).voltage("out")
        assert 0.2 < out < 0.8

    def test_nmos_pass_gate_symmetric_conduction(self):
        """Terminal order must not matter for a pass device."""
        def solve(drain_first: bool) -> float:
            circuit = Circuit()
            circuit.add_voltage_source("vdd", "vdd", "gnd", 1.0)
            circuit.add_voltage_source("vg", "g", "gnd", 1.0)
            if drain_first:
                circuit.add_mosfet("m", "vdd", "g", "out", NMOS_28NM)
            else:
                circuit.add_mosfet("m", "out", "g", "vdd", NMOS_28NM)
            circuit.add_resistor("rl", "out", "gnd", 1e5)
            return dc_operating_point(circuit).voltage("out")

        assert solve(True) == pytest.approx(solve(False), rel=1e-9)

    def test_vth_shift_weakens_device(self):
        """An aged (BTI-shifted) NMOS pulls its output less low."""
        def solve(delta: float) -> float:
            circuit = Circuit()
            circuit.add_voltage_source("vdd", "vdd", "gnd", 1.0)
            circuit.add_voltage_source("vg", "g", "gnd", 1.0)
            circuit.add_resistor("rl", "vdd", "out", 10000.0)
            circuit.add_mosfet("m", "out", "g", "gnd",
                               NMOS_28NM.with_vth_shift(delta))
            return dc_operating_point(circuit).voltage("out")

        assert solve(0.05) > solve(0.0)

    def test_mosfet_current_query(self):
        circuit = Circuit()
        circuit.add_voltage_source("vdd", "vdd", "gnd", 1.0)
        circuit.add_voltage_source("vg", "g", "gnd", 1.0)
        circuit.add_resistor("rl", "vdd", "out", 10000.0)
        circuit.add_mosfet("m", "out", "g", "gnd", NMOS_28NM)
        solution = dc_operating_point(circuit)
        assert solution.mosfet_current("m") == pytest.approx(
            solution.resistor_current("rl"), rel=1e-6)

    def test_initial_guess_shortens_iterations(self):
        circuit = divider()
        first = dc_operating_point(circuit)
        second = dc_operating_point(circuit, first.solution)
        assert second.iterations <= first.iterations
