"""Tests for repro.analysis (fitting, stats, reporting)."""

import numpy as np
import pytest

from repro import units
from repro.analysis.fitting import (
    fit_arrhenius,
    fit_lognormal_ttf,
    fit_power_law,
)
from repro.analysis.reporting import format_series, format_table
from repro.analysis.stats import (
    failure_fraction,
    monte_carlo_ttf,
    population_percentiles,
)
from repro.errors import CalibrationError, SimulationError


class TestPowerLawFit:
    def test_recovers_exact_law(self):
        times = np.logspace(0, 5, 20)
        values = 2.5e-3 * times ** 0.17
        fit = fit_power_law(times, values)
        assert fit.prefactor == pytest.approx(2.5e-3, rel=1e-6)
        assert fit.exponent == pytest.approx(0.17, abs=1e-6)
        assert fit.r_squared == pytest.approx(1.0)

    def test_predict(self):
        fit = fit_power_law([1.0, 10.0, 100.0], [2.0, 20.0, 200.0])
        assert fit.predict(50.0) == pytest.approx(100.0, rel=1e-6)

    def test_bti_trace_follows_a_power_law_roughly(self, calibration):
        model = calibration.build_model()
        times, shifts = model.stress_trace(units.hours(24.0), 16)
        fit = fit_power_law(times[1:], shifts[1:])
        assert 0.02 < fit.exponent < 0.6
        assert fit.r_squared > 0.9

    def test_rejects_non_positive_data(self):
        with pytest.raises(CalibrationError):
            fit_power_law([1.0, 2.0], [0.0, 1.0])

    def test_rejects_single_point(self):
        with pytest.raises(CalibrationError):
            fit_power_law([1.0], [1.0])


class TestArrheniusFit:
    def test_recovers_exact_law(self):
        temps = np.array([300.0, 350.0, 400.0, 450.0])
        rates = 1e6 * np.exp(-0.7 / (units.BOLTZMANN_EV * temps))
        fit = fit_arrhenius(temps, rates)
        assert fit.activation_energy_ev == pytest.approx(0.7, abs=1e-6)
        assert fit.prefactor == pytest.approx(1e6, rel=1e-4)

    def test_recovers_calibrated_recovery_energy(self, calibration):
        """Fitting the model's own acceleration vs temperature should
        return the calibrated activation energy."""
        from repro.bti.conditions import BtiRecoveryCondition
        params = calibration.model_config.acceleration
        temps = [300.0, 330.0, 360.0, 383.0]
        rates = [BtiRecoveryCondition(0.0, t).acceleration(params)
                 for t in temps]
        fit = fit_arrhenius(temps, rates)
        assert fit.activation_energy_ev == pytest.approx(
            params.activation_energy_ev, rel=1e-3)

    def test_rejects_non_positive_rates(self):
        with pytest.raises(CalibrationError):
            fit_arrhenius([300.0, 400.0], [1.0, 0.0])


class TestLognormal:
    def test_median_of_symmetric_logs(self):
        fit = fit_lognormal_ttf([10.0, 100.0, 1000.0])
        assert fit.median_s == pytest.approx(100.0, rel=1e-9)

    def test_quantiles_bracket_median(self):
        fit = fit_lognormal_ttf([50.0, 100.0, 200.0, 400.0])
        assert fit.quantile(0.01) < fit.median_s < fit.quantile(0.99)

    def test_rejects_non_positive_ttf(self):
        with pytest.raises(CalibrationError):
            fit_lognormal_ttf([1.0, -2.0])


class TestStats:
    def test_failure_fraction(self):
        assert failure_fraction([1.0, 2.0, 3.0, 4.0], 2.5) == 0.5

    def test_percentiles(self):
        result = population_percentiles(range(101), (50,))
        assert result[50.0] == pytest.approx(50.0)

    def test_monte_carlo_is_reproducible(self):
        def sample(rng):
            return float(rng.lognormal(5.0, 0.5))

        a = monte_carlo_ttf(sample, n_samples=20, seed=9)
        b = monte_carlo_ttf(sample, n_samples=20, seed=9)
        assert np.allclose(a, b)

    def test_monte_carlo_samples_differ(self):
        def sample(rng):
            return float(rng.lognormal(5.0, 0.5))

        population = monte_carlo_ttf(sample, n_samples=20, seed=9)
        assert len(set(population.tolist())) > 1

    def test_empty_population_rejected(self):
        with pytest.raises(SimulationError):
            failure_fraction([], 1.0)


class TestReporting:
    def test_table_contains_all_cells(self):
        table = format_table(("a", "b"), [(1, 2), (3, 4)], title="T")
        assert "T" in table
        for cell in ("a", "b", "1", "2", "3", "4"):
            assert cell in table

    def test_table_columns_align(self):
        table = format_table(("name", "v"), [("x", 1), ("longer", 22)])
        lines = table.splitlines()
        assert len({line.index("|") for line in lines
                    if "|" in line}) == 1

    def test_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(("a", "b"), [(1,)])

    def test_series_decimation(self):
        xs = list(range(100))
        ys = list(range(100))
        text = format_series("s", xs, ys, max_points=10)
        data_lines = [line for line in text.splitlines()[3:]]
        assert len(data_lines) <= 10

    def test_series_keeps_endpoints(self):
        text = format_series("s", [0.0, 1.0, 2.0], [5.0, 6.0, 7.0])
        assert "5" in text and "7" in text

    def test_series_rejects_mismatch(self):
        with pytest.raises(ValueError):
            format_series("s", [1.0], [1.0, 2.0])
