"""Tests for repro.bti.calibration (the Table I fit)."""

import pytest

from repro import units
from repro.bti.calibration import (
    TABLE1_MEASUREMENTS,
    Table1Measurement,
    calibrate_to_table1,
    default_calibration,
)
from repro.bti.conditions import (
    ACTIVE_ACCELERATED_RECOVERY,
    ACTIVE_RECOVERY,
    ACCELERATED_RECOVERY,
    PASSIVE_RECOVERY,
)
from repro.errors import CalibrationError


class TestTable1Rows:
    def test_four_rows(self):
        assert len(TABLE1_MEASUREMENTS) == 4

    def test_measured_values_match_paper(self):
        measured = [row.measured_fraction for row in TABLE1_MEASUREMENTS]
        assert measured == [0.0066, 0.167, 0.287, 0.724]

    def test_paper_model_values_match_paper(self):
        modeled = [row.paper_model_fraction
                   for row in TABLE1_MEASUREMENTS]
        assert modeled == [0.010, 0.144, 0.292, 0.727]

    def test_rejects_out_of_range_fraction(self):
        with pytest.raises(ValueError):
            Table1Measurement(PASSIVE_RECOVERY, 1.5, 0.5)


class TestCalibrationFit:
    def test_reproduces_all_four_rows(self, calibration):
        targets = {
            PASSIVE_RECOVERY.name: 0.0066,
            ACTIVE_RECOVERY.name: 0.167,
            ACCELERATED_RECOVERY.name: 0.287,
            ACTIVE_ACCELERATED_RECOVERY.name: 0.724,
        }
        for name, target in targets.items():
            assert calibration.fitted_fractions[name] == pytest.approx(
                target, abs=2e-3)

    def test_permanent_residue_matches_joint_row(self, calibration):
        # >27 % of the wearout survives even the joint condition.
        assert calibration.permanent_fraction_after_stress \
            == pytest.approx(0.268, abs=0.01)

    def test_acceleration_factors_are_ordered(self, calibration):
        factors = calibration.acceleration_factors
        assert 1.0 < factors["bias"] < factors["temperature"] \
            < factors["joint"]

    def test_synergy_is_super_multiplicative(self, calibration):
        assert calibration.acceleration_factors["synergy"] > 1.0

    def test_activation_energy_is_physical(self, calibration):
        # BTI recovery activation energies are reported ~0.5-1.5 eV.
        ea = calibration.model_config.acceleration.activation_energy_ev
        assert 0.3 < ea < 1.5

    def test_end_to_end_model_reproduces_table1(self, calibration):
        model = calibration.build_model()
        fraction = model.recovery_fraction_after(
            units.hours(24.0), units.hours(6.0),
            ACTIVE_ACCELERATED_RECOVERY)
        assert fraction == pytest.approx(0.724, abs=0.01)

    def test_default_calibration_is_cached(self):
        assert default_calibration() is default_calibration()


class TestCalibrationValidation:
    def test_rejects_wrong_row_count(self):
        with pytest.raises(CalibrationError):
            calibrate_to_table1(TABLE1_MEASUREMENTS[:3])

    def test_rejects_inconsistent_ordering(self):
        rows = (
            Table1Measurement(PASSIVE_RECOVERY, 0.5, 0.5),
            Table1Measurement(ACTIVE_RECOVERY, 0.1, 0.1),
            Table1Measurement(ACCELERATED_RECOVERY, 0.2, 0.2),
            Table1Measurement(ACTIVE_ACCELERATED_RECOVERY, 0.7, 0.7),
        )
        with pytest.raises(CalibrationError):
            calibrate_to_table1(rows)

    def test_alternative_measurements_can_be_fit(self):
        """The calibrator generalizes beyond the exact paper numbers."""
        rows = (
            Table1Measurement(PASSIVE_RECOVERY, 0.01, 0.01),
            Table1Measurement(ACTIVE_RECOVERY, 0.20, 0.20),
            Table1Measurement(ACCELERATED_RECOVERY, 0.30, 0.30),
            Table1Measurement(ACTIVE_ACCELERATED_RECOVERY, 0.60, 0.60),
        )
        calibration = calibrate_to_table1(rows)
        for row in rows:
            assert calibration.fitted_fractions[row.condition.name] \
                == pytest.approx(row.measured_fraction, abs=5e-3)
