"""Tests for repro.core.lifetime."""

import math

import pytest

from repro import units
from repro.bti.conditions import (
    ACTIVE_ACCELERATED_RECOVERY,
    BtiStressCondition,
)
from repro.core.lifetime import LifetimeAnalyzer
from repro.em.line import EmStressCondition, PAPER_EM_STRESS


USE_STRESS = BtiStressCondition(
    voltage=0.45, temperature_k=units.celsius_to_kelvin(60.0),
    name="use")

USE_EM = EmStressCondition(
    current_density_a_m2=units.ma_per_cm2(1.0),
    temperature_k=units.celsius_to_kelvin(85.0), name="use-grid")


@pytest.fixture(scope="module")
def analyzer() -> LifetimeAnalyzer:
    return LifetimeAnalyzer()


class TestBudgets:
    def test_vth_budget_matches_delay_budget(self, analyzer):
        budget = analyzer.vth_budget_v()
        degradation = analyzer.oscillator.delay_degradation(budget)
        assert degradation == pytest.approx(analyzer.delay_budget,
                                            rel=1e-3)

    def test_tighter_budget_means_smaller_vth_budget(self):
        loose = LifetimeAnalyzer(delay_budget=0.10)
        tight = LifetimeAnalyzer(delay_budget=0.02)
        assert tight.vth_budget_v() < loose.vth_budget_v()


class TestBtiLifetime:
    def test_no_recovery_lifetime_is_finite(self, analyzer):
        ttf = analyzer.bti_ttf_s(USE_STRESS)
        assert units.years(1.0) < ttf < units.years(500.0)

    def test_balanced_recovery_extends_to_infinity(self, analyzer):
        """A bounded envelope means the budget is never violated --
        the system "always runs in a refreshing mode"."""
        ttf = analyzer.bti_ttf_s(
            USE_STRESS, ACTIVE_ACCELERATED_RECOVERY,
            stress_interval_s=units.hours(1.0),
            recovery_interval_s=units.hours(1.0))
        assert math.isinf(ttf)

    def test_recovery_never_shortens_life(self, analyzer):
        without = analyzer.bti_ttf_s(USE_STRESS)
        with_healing = analyzer.bti_ttf_s(
            USE_STRESS, ACTIVE_ACCELERATED_RECOVERY,
            stress_interval_s=units.hours(4.0),
            recovery_interval_s=units.hours(1.0))
        assert with_healing >= without

    def test_harsher_stress_shortens_life(self, analyzer):
        harsher = BtiStressCondition(
            voltage=0.55, temperature_k=units.celsius_to_kelvin(85.0))
        assert analyzer.bti_ttf_s(harsher) \
            < analyzer.bti_ttf_s(USE_STRESS)


class TestEmLifetime:
    def test_accelerated_condition_fails_in_hours(self, analyzer):
        ttf = analyzer.em_ttf_s(PAPER_EM_STRESS)
        assert units.minutes(60) < ttf < units.hours(48)

    def test_periodic_recovery_extends_ttf(self, analyzer):
        baseline = analyzer.em_ttf_s(PAPER_EM_STRESS)
        scheduled = analyzer.em_ttf_s(
            PAPER_EM_STRESS,
            stress_interval_s=units.minutes(15.0),
            recovery_interval_s=units.minutes(5.0))
        # Growth time dominates the TTF and the estimate only credits
        # the recovery intervals with pausing growth (conservative).
        assert scheduled > 1.25 * baseline

    def test_blacks_projection_to_use_is_years(self, analyzer):
        accelerated_ttf = analyzer.em_ttf_s(PAPER_EM_STRESS)
        use_ttf = analyzer.project_em_to_use(
            PAPER_EM_STRESS, accelerated_ttf, USE_EM)
        assert use_ttf > units.years(10.0)


class TestCombined:
    def test_estimate_reports_limiting_mechanism(self, analyzer):
        estimate = analyzer.estimate(USE_STRESS, PAPER_EM_STRESS)
        assert estimate.limited_by == "em"
        assert estimate.ttf_s == estimate.em_ttf_s

    def test_bti_limited_case(self, analyzer):
        estimate = analyzer.estimate(USE_STRESS, USE_EM)
        assert estimate.limited_by in ("bti", "em")
        assert estimate.ttf_s == min(estimate.bti_ttf_s,
                                     estimate.em_ttf_s)

    def test_full_healing_reports_none(self, analyzer):
        estimate = analyzer.estimate(
            USE_STRESS, USE_EM,
            bti_recovery_interval_s=units.hours(1.0),
            em_stress_interval_s=units.minutes(10.0),
            em_recovery_interval_s=units.minutes(10.0))
        assert estimate.limited_by == "none"
        assert math.isinf(estimate.ttf_s)

    def test_ttf_years_conversion(self, analyzer):
        estimate = analyzer.estimate(USE_STRESS, PAPER_EM_STRESS)
        assert estimate.ttf_years == pytest.approx(
            units.to_years(estimate.ttf_s))
