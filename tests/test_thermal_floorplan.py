"""Tests for repro.thermal.floorplan."""

import pytest

from repro.thermal.floorplan import Block, Floorplan


class TestBlock:
    def test_area(self):
        block = Block("a", 0.0, 0.0, 2e-3, 3e-3)
        assert block.area_m2 == pytest.approx(6e-6)

    def test_rejects_non_positive_dimensions(self):
        with pytest.raises(ValueError):
            Block("a", 0.0, 0.0, 0.0, 1e-3)

    def test_shared_edge_vertical_neighbours(self):
        a = Block("a", 0.0, 0.0, 1e-3, 1e-3)
        b = Block("b", 1e-3, 0.0, 1e-3, 1e-3)
        assert a.shared_edge_m(b) == pytest.approx(1e-3)
        assert b.shared_edge_m(a) == pytest.approx(1e-3)

    def test_shared_edge_horizontal_neighbours(self):
        a = Block("a", 0.0, 0.0, 1e-3, 1e-3)
        b = Block("b", 0.0, 1e-3, 1e-3, 1e-3)
        assert a.shared_edge_m(b) == pytest.approx(1e-3)

    def test_partial_overlap(self):
        a = Block("a", 0.0, 0.0, 1e-3, 1e-3)
        b = Block("b", 1e-3, 0.5e-3, 1e-3, 1e-3)
        assert a.shared_edge_m(b) == pytest.approx(0.5e-3)

    def test_diagonal_blocks_share_nothing(self):
        a = Block("a", 0.0, 0.0, 1e-3, 1e-3)
        b = Block("b", 1e-3, 1e-3, 1e-3, 1e-3)
        assert a.shared_edge_m(b) == pytest.approx(0.0)

    def test_distant_blocks_share_nothing(self):
        a = Block("a", 0.0, 0.0, 1e-3, 1e-3)
        b = Block("b", 5e-3, 0.0, 1e-3, 1e-3)
        assert a.shared_edge_m(b) == 0.0


class TestFloorplan:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Floorplan([])

    def test_rejects_duplicate_names(self):
        blocks = [Block("a", 0.0, 0.0, 1e-3, 1e-3),
                  Block("a", 1e-3, 0.0, 1e-3, 1e-3)]
        with pytest.raises(ValueError):
            Floorplan(blocks)

    def test_lookup_by_name(self):
        plan = Floorplan.grid(2, 2)
        assert plan.block("core00").x_m == 0.0
        assert plan.index_of("core11") == 3

    def test_unknown_name_raises(self):
        plan = Floorplan.grid(2, 2)
        with pytest.raises(KeyError):
            plan.index_of("missing")

    def test_grid_block_count(self):
        assert len(Floorplan.grid(3, 4)) == 12

    def test_grid_adjacency_count(self):
        # A rows x cols grid has r*(c-1) + c*(r-1) adjacent pairs.
        plan = Floorplan.grid(3, 3)
        assert len(plan.adjacency()) == 3 * 2 + 3 * 2

    def test_corner_has_two_neighbours(self):
        plan = Floorplan.grid(3, 3)
        assert sorted(plan.neighbours_of("core00")) == ["core01",
                                                        "core10"]

    def test_centre_has_four_neighbours(self):
        plan = Floorplan.grid(3, 3)
        assert len(plan.neighbours_of("core11")) == 4

    def test_grid_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            Floorplan.grid(0, 3)
