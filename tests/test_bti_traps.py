"""Tests for repro.bti.traps (the trap-population mechanics)."""

import numpy as np
import pytest

from repro import units
from repro.bti.traps import TrapPopulation, TrapPopulationConfig
from repro.errors import SimulationError


@pytest.fixture()
def small_population() -> TrapPopulation:
    return TrapPopulation(TrapPopulationConfig(n_bins=41))


class TestConfigValidation:
    def test_rejects_inverted_tau_range(self):
        with pytest.raises(ValueError):
            TrapPopulationConfig(tau_min_s=1e3, tau_max_s=1e2)

    def test_rejects_single_bin(self):
        with pytest.raises(ValueError):
            TrapPopulationConfig(n_bins=1)

    def test_rejects_negative_lock_rate(self):
        with pytest.raises(ValueError):
            TrapPopulationConfig(lock_rate_per_s=-1.0)

    def test_rejects_bad_age_thresholds(self):
        with pytest.raises(ValueError):
            TrapPopulationConfig(age_on_occupancy=0.1,
                                 age_off_occupancy=0.5)

    def test_rejects_non_positive_emission_scale(self):
        with pytest.raises(ValueError):
            TrapPopulationConfig(emission_scale=0.0)


class TestFreshState:
    def test_starts_with_zero_shift(self, small_population):
        assert small_population.total_vth_v == 0.0

    def test_starts_with_zero_permanent(self, small_population):
        assert small_population.permanent_vth_v == 0.0

    def test_permanent_fraction_is_zero_when_fresh(self, small_population):
        assert small_population.permanent_fraction == 0.0


class TestStress:
    def test_stress_increases_shift(self, small_population):
        small_population.stress(units.hours(1.0))
        assert small_population.total_vth_v > 0.0

    def test_longer_stress_gives_more_shift(self):
        short = TrapPopulation(TrapPopulationConfig(n_bins=41))
        long = TrapPopulation(TrapPopulationConfig(n_bins=41))
        short.stress(units.hours(1.0))
        long.stress(units.hours(10.0))
        assert long.total_vth_v > short.total_vth_v

    def test_occupancy_stays_bounded(self, small_population):
        small_population.stress(units.days(10.0))
        assert np.all(small_population.occupancy >= 0.0)
        assert np.all(small_population.occupancy <= 1.0 + 1e-12)

    def test_shift_bounded_by_trap_budget(self, small_population):
        small_population.stress(units.days(50.0))
        budget = small_population.config.vth_full_shift_v
        assert small_population.total_vth_v <= budget * (1.0 + 1e-9)

    def test_capture_acceleration_speeds_stress(self):
        slow = TrapPopulation(TrapPopulationConfig(n_bins=41))
        fast = TrapPopulation(TrapPopulationConfig(n_bins=41))
        slow.stress(units.hours(1.0), capture_acceleration=1.0)
        fast.stress(units.hours(1.0), capture_acceleration=10.0)
        assert fast.total_vth_v > slow.total_vth_v

    def test_stress_accumulates_time(self, small_population):
        small_population.stress(units.hours(2.0))
        assert small_population.time_s == pytest.approx(units.hours(2.0))

    def test_zero_duration_is_noop(self, small_population):
        small_population.stress(0.0)
        assert small_population.total_vth_v == 0.0

    def test_rejects_negative_duration(self, small_population):
        with pytest.raises(SimulationError):
            small_population.stress(-1.0)

    def test_rejects_non_positive_acceleration(self, small_population):
        with pytest.raises(SimulationError):
            small_population.stress(1.0, capture_acceleration=0.0)


class TestRecovery:
    def test_recovery_reduces_shift(self, small_population):
        small_population.stress(units.hours(1.0))
        before = small_population.total_vth_v
        small_population.recover(units.hours(1.0), acceleration=1e6)
        assert small_population.total_vth_v < before

    def test_recovery_never_goes_negative(self, small_population):
        small_population.stress(units.hours(1.0))
        small_population.recover(units.days(30.0), acceleration=1e12)
        assert small_population.total_vth_v >= 0.0

    def test_faster_acceleration_recovers_more(self):
        a = TrapPopulation(TrapPopulationConfig(n_bins=41))
        b = TrapPopulation(TrapPopulationConfig(n_bins=41))
        for population in (a, b):
            population.stress(units.hours(4.0))
        a.recover(units.hours(1.0), acceleration=1.0)
        b.recover(units.hours(1.0), acceleration=1e6)
        assert b.total_vth_v < a.total_vth_v

    def test_recovery_does_not_touch_permanent(self):
        population = TrapPopulation(TrapPopulationConfig(
            n_bins=41, lock_rate_per_s=1e-4, lock_age_s=60.0))
        population.stress(units.hours(6.0))
        permanent_before = population.permanent_vth_v
        assert permanent_before > 0.0
        population.recover(units.days(5.0), acceleration=1e9)
        assert population.permanent_vth_v == pytest.approx(
            permanent_before)

    def test_fresh_population_recovery_is_noop(self, small_population):
        small_population.recover(units.hours(5.0), acceleration=1e6)
        assert small_population.total_vth_v == 0.0


class TestLockIn:
    def test_no_lock_before_lock_age(self):
        population = TrapPopulation(TrapPopulationConfig(
            n_bins=41, lock_age_s=units.hours(2.0)))
        population.stress(units.hours(1.5))
        assert population.permanent_vth_v == 0.0

    def test_lock_after_lock_age(self):
        population = TrapPopulation(TrapPopulationConfig(
            n_bins=41, lock_age_s=units.minutes(30.0),
            lock_rate_per_s=1e-4))
        population.stress(units.hours(4.0))
        assert population.permanent_vth_v > 0.0

    def test_lock_disabled_with_zero_rate(self):
        population = TrapPopulation(TrapPopulationConfig(
            n_bins=41, lock_rate_per_s=0.0))
        population.stress(units.days(2.0))
        assert population.permanent_vth_v == 0.0

    def test_permanent_saturates_at_trap_budget(self):
        population = TrapPopulation(TrapPopulationConfig(
            n_bins=41, lock_rate_per_s=1e-3,
            lock_age_s=units.minutes(10.0)))
        population.stress(units.days(30.0))
        assert population.permanent_vth_v \
            <= population.config.vth_full_shift_v

    def test_scheduled_recovery_prevents_lock_in(self):
        """The paper's Fig. 4 core claim at the mechanism level."""
        config = TrapPopulationConfig(
            n_bins=41, lock_age_s=units.minutes(75.0),
            lock_rate_per_s=1e-4)
        scheduled = TrapPopulation(config)
        for _ in range(6):
            scheduled.stress(units.hours(1.0))
            scheduled.recover(units.hours(1.0), acceleration=1e7)
        continuous = TrapPopulation(config)
        continuous.stress(units.hours(6.0))
        assert scheduled.permanent_vth_v == pytest.approx(0.0, abs=1e-9)
        assert continuous.permanent_vth_v > 0.0

    def test_ages_reset_after_emptying(self):
        population = TrapPopulation(TrapPopulationConfig(n_bins=41))
        population.stress(units.hours(1.0))
        population.recover(units.hours(10.0), acceleration=1e12)
        assert np.all(population.age_s[population.occupancy <= 0.05]
                      == 0.0)


class TestCopyAndReset:
    def test_copy_is_independent(self, small_population):
        small_population.stress(units.hours(1.0))
        clone = small_population.copy()
        clone.stress(units.hours(5.0))
        assert clone.total_vth_v > small_population.total_vth_v

    def test_copy_preserves_state(self, small_population):
        small_population.stress(units.hours(2.0))
        clone = small_population.copy()
        assert clone.total_vth_v == pytest.approx(
            small_population.total_vth_v)
        assert clone.time_s == small_population.time_s

    def test_reset_restores_fresh_state(self, small_population):
        small_population.stress(units.days(1.0))
        small_population.reset()
        assert small_population.total_vth_v == 0.0
        assert small_population.permanent_vth_v == 0.0
        assert small_population.time_s == 0.0

    def test_reset_restores_weights(self):
        population = TrapPopulation(TrapPopulationConfig(
            n_bins=41, lock_rate_per_s=1e-3,
            lock_age_s=units.minutes(10.0)))
        fresh_weights = population.weights.copy()
        population.stress(units.days(2.0))
        assert not np.allclose(population.weights, fresh_weights)
        population.reset()
        assert np.allclose(population.weights, fresh_weights)
