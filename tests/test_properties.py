"""Property-based tests (hypothesis) on core invariants.

These pin down the *structural* guarantees of the models -- bounds,
monotonicity, conservation, inversion -- over randomized inputs, which
the example-based tests cannot cover exhaustively.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import units
from repro.analysis.reporting import format_table
from repro.bti.analytic import PowerLawStressModel, \
    UniversalRelaxationModel
from repro.bti.conditions import (
    BtiRecoveryCondition,
    PASSIVE_RECOVERY,
    RecoveryAccelerationParams,
)
from repro.bti.traps import TrapPopulation, TrapPopulationConfig
from repro.em.ac_stress import effective_current_density
from repro.em.korhonen import KorhonenConfig, KorhonenSolver
from repro.em.lumped import LumpedEmModel
from repro.em.line import EmStressCondition
from repro.sensors.ring_oscillator import RingOscillator

# Small trap population for speed inside hypothesis loops.
_SMALL = TrapPopulationConfig(n_bins=21)

durations = st.floats(min_value=1.0, max_value=1e6,
                      allow_nan=False, allow_infinity=False)
accelerations = st.floats(min_value=1e-2, max_value=1e8,
                          allow_nan=False, allow_infinity=False)


class TestTrapPopulationProperties:
    @given(stress_s=durations, accel=accelerations)
    @settings(max_examples=25, deadline=None)
    def test_occupancy_always_bounded(self, stress_s, accel):
        population = TrapPopulation(_SMALL)
        population.stress(stress_s, accel)
        assert np.all(population.occupancy >= 0.0)
        assert np.all(population.occupancy <= 1.0 + 1e-12)

    @given(stress_s=durations)
    @settings(max_examples=25, deadline=None)
    def test_shift_never_negative(self, stress_s):
        population = TrapPopulation(_SMALL)
        population.stress(stress_s)
        population.recover(stress_s, 1e6)
        assert population.total_vth_v >= 0.0

    @given(first=durations, second=durations)
    @settings(max_examples=25, deadline=None)
    def test_stress_is_monotone_in_time(self, first, second):
        shorter, longer = sorted((first, second))
        a = TrapPopulation(_SMALL)
        b = TrapPopulation(_SMALL)
        a.stress(shorter)
        b.stress(longer)
        assert b.total_vth_v >= a.total_vth_v - 1e-15

    @given(stress_s=durations, recovery_s=durations,
           accel=accelerations)
    @settings(max_examples=25, deadline=None)
    def test_recovery_never_increases_shift(self, stress_s, recovery_s,
                                            accel):
        population = TrapPopulation(_SMALL)
        population.stress(stress_s)
        before = population.total_vth_v
        population.recover(recovery_s, accel)
        assert population.total_vth_v <= before + 1e-15

    @given(stress_s=durations)
    @settings(max_examples=25, deadline=None)
    def test_split_stress_equals_joint_stress(self, stress_s):
        """Stress phases compose: s(a) then s(b) == s(a + b)."""
        split = TrapPopulation(_SMALL)
        joint = TrapPopulation(_SMALL)
        split.stress(stress_s / 2.0)
        split.stress(stress_s / 2.0)
        joint.stress(stress_s)
        assert split.total_vth_v == pytest.approx(joint.total_vth_v,
                                                  rel=1e-9)


class TestConditionProperties:
    @given(bias=st.floats(min_value=-0.5, max_value=0.0),
           temp_c=st.floats(min_value=0.0, max_value=150.0))
    @settings(max_examples=50, deadline=None)
    def test_acceleration_at_least_passive(self, bias, temp_c):
        params = RecoveryAccelerationParams(
            bias_efold_volts=0.06, activation_energy_ev=0.8,
            synergy_coefficient=6.0)
        condition = BtiRecoveryCondition(
            bias, units.celsius_to_kelvin(max(temp_c, 20.0)))
        assert condition.acceleration(params) >= 1.0 - 1e-9


class TestAnalyticModelProperties:
    @given(t=st.floats(min_value=1.0, max_value=1e9))
    @settings(max_examples=50, deadline=None)
    def test_power_law_inversion(self, t):
        model = PowerLawStressModel()
        assert model.equivalent_stress_time(
            model.shift(t)) == pytest.approx(t, rel=1e-6)

    @given(t_rec=st.floats(min_value=0.0, max_value=1e8),
           t_stress=st.floats(min_value=1.0, max_value=1e8))
    @settings(max_examples=50, deadline=None)
    def test_relaxation_fraction_in_unit_interval(self, t_rec, t_stress):
        model = UniversalRelaxationModel()
        remaining = model.remaining_fraction(t_rec, t_stress,
                                             PASSIVE_RECOVERY)
        assert 0.0 < remaining <= 1.0


class TestKorhonenProperties:
    @given(gradient=st.floats(min_value=1e12, max_value=1e14),
           duration=st.floats(min_value=60.0, max_value=7200.0))
    @settings(max_examples=15, deadline=None)
    def test_mean_stress_conserved_for_any_drive(self, gradient,
                                                 duration):
        solver = KorhonenSolver(2.673e-3, KorhonenConfig(
            n_nodes=101, max_dt_s=duration / 4.0))
        solver.advance(duration, 3.5e-14, gradient)
        scale = max(abs(solver.stress_at_start), 1.0)
        assert abs(solver.mean_stress()) < 1e-6 * scale

    @given(gradient=st.floats(min_value=1e12, max_value=1e14))
    @settings(max_examples=15, deadline=None)
    def test_profile_antisymmetry(self, gradient):
        solver = KorhonenSolver(2.673e-3, KorhonenConfig(
            n_nodes=101, max_dt_s=600.0))
        solver.advance(3600.0, 3.5e-14, gradient)
        _x, sigma = solver.profile()
        assert np.allclose(sigma, -sigma[::-1], rtol=1e-6,
                           atol=1e-9 * abs(sigma[0]))


class TestLumpedEmProperties:
    @given(density=st.floats(min_value=1e9, max_value=2e11),
           temp_c=st.floats(min_value=100.0, max_value=300.0))
    @settings(max_examples=30, deadline=None)
    def test_nucleation_time_positive_and_monotone(self, density,
                                                   temp_c):
        model = LumpedEmModel()
        condition = EmStressCondition(
            density, units.celsius_to_kelvin(temp_c))
        harder = EmStressCondition(
            density * 2.0, units.celsius_to_kelvin(temp_c))
        assert 0.0 < model.nucleation_time(harder) \
            < model.nucleation_time(condition)

    @given(fraction=st.floats(min_value=0.05, max_value=0.95))
    @settings(max_examples=20, deadline=None)
    def test_stress_at_partial_time_below_critical(self, fraction):
        from repro.em.line import PAPER_EM_STRESS
        model = LumpedEmModel()
        t_nuc = model.nucleation_time(PAPER_EM_STRESS)
        stress = model.cathode_stress(fraction * t_nuc,
                                      PAPER_EM_STRESS)
        assert stress < model.wire.material.critical_stress_pa


class TestAcStressProperties:
    @given(forward=st.floats(min_value=0.0, max_value=1.0),
           gamma=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=50, deadline=None)
    def test_effective_density_bounded(self, forward, gamma):
        reverse = 1.0 - forward
        effective = effective_current_density(1e10, forward, 1e10,
                                              reverse, gamma)
        assert 0.0 <= effective <= 1e10


class TestRingOscillatorProperties:
    @given(shift=st.floats(min_value=0.0, max_value=0.4))
    @settings(max_examples=50, deadline=None)
    def test_frequency_inversion_roundtrip(self, shift):
        ro = RingOscillator()
        frequency = ro.frequency_hz(shift)
        if frequency > 0.0:
            assert ro.infer_delta_vth_v(frequency) == pytest.approx(
                shift, abs=1e-9)

    @given(a=st.floats(min_value=0.0, max_value=0.3),
           b=st.floats(min_value=0.0, max_value=0.3))
    @settings(max_examples=50, deadline=None)
    def test_frequency_monotone_in_shift(self, a, b):
        ro = RingOscillator()
        low, high = sorted((a, b))
        assert ro.frequency_hz(high) <= ro.frequency_hz(low) + 1e-9


class TestReportingProperties:
    @given(rows=st.lists(st.tuples(st.integers(), st.integers()),
                         min_size=1, max_size=10))
    @settings(max_examples=30, deadline=None)
    def test_table_always_aligns(self, rows):
        table = format_table(("a", "b"), rows)
        lines = [line for line in table.splitlines() if "|" in line]
        pipe_positions = {tuple(i for i, c in enumerate(line)
                                if c == "|") for line in lines}
        assert len(pipe_positions) == 1
