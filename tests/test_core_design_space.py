"""Tests for repro.core.design_space (recovery as a design knob)."""

import pytest

from repro import units
from repro.bti.conditions import BtiRecoveryCondition, \
    BtiStressCondition
from repro.core.design_space import DesignCandidate, \
    DesignSpaceExplorer
from repro.errors import SimulationError

USE_STRESS = BtiStressCondition(
    voltage=0.45, temperature_k=units.celsius_to_kelvin(60.0),
    name="use")


@pytest.fixture(scope="module")
def explorer(calibration) -> DesignSpaceExplorer:
    return DesignSpaceExplorer(calibration)


@pytest.fixture(scope="module")
def candidates(explorer):
    return explorer.sweep(units.years(10.0), USE_STRESS)


class TestSweep:
    def test_grid_size(self, candidates):
        assert len(candidates) == 4 * 3

    def test_only_joint_knobs_are_feasible(self, candidates):
        """The paper's Table I story at the design level: neither
        bias alone nor heat alone balances a lock-safe cadence."""
        for candidate in candidates:
            if candidate.feasible:
                assert candidate.recovery.is_active
                assert candidate.recovery.is_accelerated

    def test_some_candidates_are_feasible(self, candidates):
        assert any(candidate.feasible for candidate in candidates)

    def test_hotter_healing_buys_availability(self, candidates):
        feasible = sorted(
            (c for c in candidates if c.feasible),
            key=lambda c: c.recovery.temperature_k)
        availabilities = [c.availability for c in feasible]
        assert availabilities == sorted(availabilities)

    def test_infeasible_candidates_are_marked(self, candidates):
        infeasible = [c for c in candidates if not c.feasible]
        assert infeasible
        assert all(c.margin == float("inf") for c in infeasible)


class TestPareto:
    def test_front_is_feasible_and_nondominated(self, explorer,
                                                candidates):
        front = explorer.pareto_front(candidates)
        assert front
        for candidate in front:
            assert candidate.feasible
            assert not any(other.dominates(candidate)
                           for other in candidates)

    def test_front_sorted_by_margin(self, explorer, candidates):
        front = explorer.pareto_front(candidates)
        margins = [c.margin for c in front]
        assert margins == sorted(margins)

    def test_dominance_relation(self):
        recovery = BtiRecoveryCondition(
            -0.3, units.celsius_to_kelvin(110.0))
        better = DesignCandidate(recovery, 1.0, 1.0, 0.01, 0.9, 0.1,
                                 True)
        worse = DesignCandidate(recovery, 1.0, 1.0, 0.02, 0.8, 0.2,
                                True)
        assert better.dominates(worse)
        assert not worse.dominates(better)

    def test_feasible_dominates_infeasible(self):
        recovery = BtiRecoveryCondition(
            -0.3, units.celsius_to_kelvin(110.0))
        feasible = DesignCandidate(recovery, 1.0, 1.0, 0.05, 0.5, 1.0,
                                   True)
        infeasible = DesignCandidate(recovery, 1.0, float("inf"),
                                     float("inf"), 0.0, float("inf"),
                                     False)
        assert feasible.dominates(infeasible)

    def test_incomparable_candidates_do_not_dominate(self):
        recovery = BtiRecoveryCondition(
            -0.3, units.celsius_to_kelvin(110.0))
        a = DesignCandidate(recovery, 1.0, 1.0, 0.01, 0.5, 0.5, True)
        b = DesignCandidate(recovery, 1.0, 1.0, 0.02, 0.9, 0.1, True)
        assert not a.dominates(b)
        assert not b.dominates(a)


class TestThermalCoupling:
    def test_neighbour_heat_cuts_the_heater_bill(self, calibration):
        """An explorer wired to a busy multicore floorplan charges
        less heater power for the same healing temperature -- the
        dark-silicon synergy, visible at the design-space level."""
        from repro.thermal.floorplan import Floorplan
        from repro.thermal.network import ThermalRCNetwork

        isolated = DesignSpaceExplorer(calibration)
        crowded = DesignSpaceExplorer(
            calibration,
            thermal=ThermalRCNetwork(Floorplan.grid(3, 3)),
            heater_block="core11")
        recovery = BtiRecoveryCondition(
            -0.3, units.celsius_to_kelvin(110.0))
        lonely = isolated.evaluate(units.years(10.0), USE_STRESS,
                                   recovery)
        # Even with an idle 3x3 chip the centre block couples to more
        # silicon, but the point is the API: swap the thermal model,
        # the heater column follows.
        social = crowded.evaluate(units.years(10.0), USE_STRESS,
                                  recovery)
        assert lonely.feasible and social.feasible
        assert social.heater_power_w != lonely.heater_power_w


class TestValidation:
    def test_rejects_bad_lifetime(self, explorer):
        recovery = BtiRecoveryCondition(
            -0.3, units.celsius_to_kelvin(110.0))
        with pytest.raises(SimulationError):
            explorer.evaluate(0.0, USE_STRESS, recovery)
