"""Tests for repro.circuit.mosfet (device model)."""

import numpy as np
import pytest

from repro.circuit.mosfet import (
    Mosfet,
    MosfetParams,
    NMOS_28NM,
    PMOS_28NM,
    _nmos_core,
)
from repro.errors import NetlistError


def make_nmos(vd: float, vg: float, vs: float):
    """A standalone NMOS on nodes [0]=d, [1]=g, [2]=s with given bias."""
    device = Mosfet("m", 0, 1, 2, NMOS_28NM)
    return device, np.array([vd, vg, vs])


class TestParams:
    def test_beta(self):
        params = MosfetParams("nmos", 0.3, 2e-4, 5.0)
        assert params.beta == pytest.approx(1e-3)

    def test_vth_shift(self):
        aged = NMOS_28NM.with_vth_shift(0.05)
        assert aged.vth_v == pytest.approx(NMOS_28NM.vth_v + 0.05)

    def test_scaled_width(self):
        wide = NMOS_28NM.scaled(3.0)
        assert wide.w_over_l == pytest.approx(3.0 * NMOS_28NM.w_over_l)

    def test_rejects_bad_polarity(self):
        with pytest.raises(NetlistError):
            MosfetParams("mos", 0.3, 1e-4, 1.0)

    def test_rejects_non_positive_vth(self):
        with pytest.raises(NetlistError):
            MosfetParams("nmos", 0.0, 1e-4, 1.0)

    def test_rejects_bad_scale(self):
        with pytest.raises(NetlistError):
            NMOS_28NM.scaled(0.0)


class TestNmosCore:
    def test_cutoff(self):
        ids, gm, gds = _nmos_core(0.2, 0.5, NMOS_28NM)
        assert ids == gm == gds == 0.0

    def test_triode_current(self):
        vgs, vds = 1.0, 0.1
        ids, _gm, _gds = _nmos_core(vgs, vds, NMOS_28NM)
        beta = NMOS_28NM.beta
        vov = vgs - NMOS_28NM.vth_v
        lam = NMOS_28NM.lambda_per_v
        expected = beta * (vov - 0.5 * vds) * vds * (1.0 + lam * vds)
        assert ids == pytest.approx(expected)

    def test_saturation_current(self):
        vgs, vds = 0.8, 1.0
        ids, _gm, _gds = _nmos_core(vgs, vds, NMOS_28NM)
        beta = NMOS_28NM.beta
        vov = vgs - NMOS_28NM.vth_v
        lam = NMOS_28NM.lambda_per_v
        expected = 0.5 * beta * vov * vov * (1.0 + lam * vds)
        assert ids == pytest.approx(expected)

    def test_continuity_at_pinch_off(self):
        vgs = 0.8
        vov = vgs - NMOS_28NM.vth_v
        below, _a, _b = _nmos_core(vgs, vov - 1e-9, NMOS_28NM)
        above, _c, _d = _nmos_core(vgs, vov + 1e-9, NMOS_28NM)
        assert below == pytest.approx(above, rel=1e-6)

    def test_gm_increases_with_overdrive(self):
        _i1, gm1, _ = _nmos_core(0.6, 1.0, NMOS_28NM)
        _i2, gm2, _ = _nmos_core(0.9, 1.0, NMOS_28NM)
        assert gm2 > gm1


class TestEvaluate:
    def test_off_device_leaks_only(self):
        device, v = make_nmos(1.0, 0.0, 0.0)
        ids, g_drain, _g_gate = device.evaluate(v)
        assert ids == pytest.approx(NMOS_28NM.leak_s * 1.0)
        assert g_drain == pytest.approx(NMOS_28NM.leak_s)

    def test_forward_current_is_positive(self):
        device, v = make_nmos(1.0, 1.0, 0.0)
        ids, _gd, _gg = device.evaluate(v)
        assert ids > 0.0

    def test_reverse_bias_flips_current(self):
        forward, vf = make_nmos(1.0, 1.0, 0.0)
        reverse = Mosfet("m", 0, 1, 2, NMOS_28NM)
        vr = np.array([0.0, 1.0, 1.0])  # drain below source
        i_forward = forward.evaluate(vf)[0]
        # The reverse device sees the same |vds| but swapped terminals:
        # vgs measured from the true source (node 0 now) is the same.
        i_reverse = reverse.evaluate(vr)[0]
        assert i_reverse == pytest.approx(-i_forward, rel=1e-9)

    def test_pmos_mirrors_nmos(self):
        nmos = Mosfet("n", 0, 1, 2, NMOS_28NM)
        pmos = Mosfet("p", 0, 1, 2,
                      MosfetParams("pmos", NMOS_28NM.vth_v,
                                   NMOS_28NM.kp_a_v2,
                                   NMOS_28NM.w_over_l,
                                   NMOS_28NM.lambda_per_v,
                                   NMOS_28NM.leak_s))
        v_n = np.array([1.0, 1.0, 0.0])
        v_p = -v_n
        assert pmos.evaluate(v_p)[0] == pytest.approx(
            -nmos.evaluate(v_n)[0], rel=1e-12)

    def test_derivatives_match_finite_differences(self):
        device, v = make_nmos(0.6, 0.9, 0.1)
        ids, g_drain, g_gate = device.evaluate(v)
        eps = 1e-7
        v_d = v.copy()
        v_d[0] += eps
        fd_drain = (device.evaluate(v_d)[0] - ids) / eps
        v_g = v.copy()
        v_g[1] += eps
        fd_gate = (device.evaluate(v_g)[0] - ids) / eps
        assert g_drain == pytest.approx(fd_drain, rel=1e-4)
        assert g_gate == pytest.approx(fd_gate, rel=1e-4)

    def test_derivatives_match_fd_in_swapped_region(self):
        device, v = make_nmos(0.1, 0.9, 0.6)  # vd < vs: swapped
        ids, g_drain, g_gate = device.evaluate(v)
        eps = 1e-7
        v_d = v.copy()
        v_d[0] += eps
        fd_drain = (device.evaluate(v_d)[0] - ids) / eps
        assert g_drain == pytest.approx(fd_drain, rel=1e-4)

    def test_pmos_derivatives_match_fd(self):
        device = Mosfet("p", 0, 1, 2, PMOS_28NM)
        v = np.array([0.2, 0.0, 1.0])
        ids, g_drain, g_gate = device.evaluate(v)
        eps = 1e-7
        v_d = v.copy()
        v_d[0] += eps
        fd_drain = (device.evaluate(v_d)[0] - ids) / eps
        v_g = v.copy()
        v_g[1] += eps
        fd_gate = (device.evaluate(v_g)[0] - ids) / eps
        assert g_drain == pytest.approx(fd_drain, rel=1e-4)
        assert g_gate == pytest.approx(fd_gate, rel=1e-4)
