"""Tests for repro.thermal.network."""

import numpy as np
import pytest

from repro import units
from repro.errors import SimulationError
from repro.thermal.floorplan import Floorplan
from repro.thermal.network import ThermalNetworkConfig, ThermalRCNetwork


@pytest.fixture()
def network() -> ThermalRCNetwork:
    return ThermalRCNetwork(Floorplan.grid(3, 3))


class TestSteadyState:
    def test_zero_power_sits_at_ambient(self, network):
        temps = network.steady_state(np.zeros(9))
        assert np.allclose(temps, network.config.ambient_k)

    def test_power_raises_temperature(self, network):
        temps = network.steady_state(np.full(9, 1.5))
        assert np.all(temps > network.config.ambient_k)

    def test_uniform_power_gives_uniform_temperature(self, network):
        temps = network.steady_state(np.full(9, 1.0))
        assert np.allclose(temps, temps[0])

    def test_single_hot_block_heats_neighbours(self, network):
        powers = np.zeros(9)
        powers[4] = 2.0  # centre of the 3x3 grid
        temps = network.steady_state(powers)
        centre = temps[4]
        neighbour = temps[1]
        corner = temps[0]
        ambient = network.config.ambient_k
        assert centre > neighbour > corner > ambient

    def test_dark_core_is_heated_by_neighbours(self, network):
        """The paper's dark-silicon healing premise: an idle core next
        to busy ones sits well above ambient."""
        powers = np.full(9, 1.5)
        powers[4] = 0.0
        temps = network.steady_state(powers)
        assert temps[4] > network.config.ambient_k + 10.0

    def test_energy_balance(self, network):
        """Total power in equals total heat flowing to ambient."""
        powers = np.linspace(0.0, 2.0, 9)
        temps = network.steady_state(powers)
        heat_out = np.sum(network.g_ambient
                          * (temps - network.config.ambient_k))
        assert heat_out == pytest.approx(powers.sum(), rel=1e-9)

    def test_steady_state_map(self, network):
        temps = network.steady_state_map({"core11": 2.0})
        assert temps["core11"] > temps["core00"]

    def test_rejects_negative_power(self, network):
        with pytest.raises(SimulationError):
            network.steady_state(np.full(9, -1.0))

    def test_rejects_wrong_length(self, network):
        with pytest.raises(SimulationError):
            network.steady_state(np.zeros(4))


class TestTransient:
    def test_transient_approaches_steady_state(self, network):
        powers = np.full(9, 1.0)
        target = network.steady_state(powers).copy()
        network.temperatures_k = np.full(9, network.config.ambient_k)
        tau = network.thermal_time_constant_s()
        network.advance(10.0 * tau, powers, max_dt_s=tau / 20.0)
        assert np.allclose(network.temperatures_k, target, atol=0.1)

    def test_transient_moves_monotonically_when_heating(self, network):
        powers = np.full(9, 1.0)
        network.temperatures_k = np.full(9, network.config.ambient_k)
        t1 = network.advance(0.01, powers).copy()
        t2 = network.advance(0.01, powers).copy()
        assert np.all(t2 >= t1)

    def test_rejects_negative_duration(self, network):
        with pytest.raises(SimulationError):
            network.advance(-1.0, np.zeros(9))

    def test_time_constant_is_positive(self, network):
        assert network.thermal_time_constant_s() > 0.0


class TestHeatingPower:
    def test_zero_when_background_suffices(self, network):
        """Dark-silicon case: busy neighbours already heat the block."""
        powers = np.full(9, 2.5)
        powers[4] = 0.0
        hot = network.steady_state(powers.copy())[4]
        needed = network.heating_power_w("core11", hot - 5.0, powers)
        assert needed == 0.0

    def test_heater_reaches_the_target(self, network):
        powers = np.zeros(9)
        target = units.celsius_to_kelvin(110.0)
        heater = network.heating_power_w("core11", target, powers)
        assert heater > 0.0
        powers[4] = heater
        temps = network.steady_state(powers)
        assert temps[4] == pytest.approx(target, abs=0.01)

    def test_hotter_target_needs_more_power(self, network):
        powers = np.zeros(9)
        mild = network.heating_power_w(
            "core11", units.celsius_to_kelvin(80.0), powers)
        hot = network.heating_power_w(
            "core11", units.celsius_to_kelvin(120.0), powers)
        assert hot > mild

    def test_neighbour_heat_reduces_the_heater_bill(self, network):
        target = units.celsius_to_kelvin(110.0)
        idle = network.heating_power_w("core11", target, np.zeros(9))
        busy = np.full(9, 1.5)
        busy[4] = 0.0
        assisted = network.heating_power_w("core11", target, busy)
        assert assisted < idle

    def test_healing_energy_scales_with_interval(self, network):
        target = units.celsius_to_kelvin(110.0)
        one = network.healing_energy_j("core11", target, np.zeros(9),
                                       60.0)
        two = network.healing_energy_j("core11", target, np.zeros(9),
                                       120.0)
        assert two == pytest.approx(2.0 * one)

    def test_rejects_bad_target(self, network):
        with pytest.raises(SimulationError):
            network.heating_power_w("core11", 0.0, np.zeros(9))


class TestConfig:
    def test_sane_default_operating_point(self):
        """A 2x2 mm core at 1.5 W lands at a plausible hot-spot temp."""
        network = ThermalRCNetwork(Floorplan.grid(1, 1))
        temps = network.steady_state([1.5])
        celsius = units.kelvin_to_celsius(float(temps[0]))
        assert 80.0 < celsius < 120.0

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            ThermalNetworkConfig(vertical_resistance_km2_w=0.0)

    def test_temperature_of_lookup(self, network):
        network.steady_state(np.zeros(9))
        assert network.temperature_of("core00") == pytest.approx(
            network.config.ambient_k)

    def test_temperature_map_has_all_blocks(self, network):
        assert set(network.temperature_map()) == {
            f"core{r}{c}" for r in range(3) for c in range(3)}
