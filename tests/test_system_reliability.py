"""Tests for repro.system.reliability."""

import numpy as np
import pytest

from repro import units
from repro.errors import SimulationError
from repro.system.reliability import reliability_report
from repro.system.simulator import SystemResult


def make_result(drift_ohm: float, horizon_s: float = units.days(2.0)
                ) -> SystemResult:
    n = 4
    return SystemResult(
        times_s=np.array([horizon_s / 2.0, horizon_s]),
        worst_degradation=np.array([0.01, 0.02]),
        mean_degradation=np.array([0.005, 0.01]),
        dropped_demand=np.zeros(2),
        final_delta_vth_v=np.full(n, 0.01),
        final_permanent_vth_v=np.full(n, 0.002),
        final_em_drift_ohm=np.full(n, drift_ohm),
        em_failures=np.zeros(n, dtype=bool))


class TestReliabilityReport:
    def test_no_drift_means_unbounded_em_life(self):
        report = reliability_report(make_result(0.0),
                                    units.years(10.0))
        assert report.em_chip_median_ttf_s == float("inf")
        assert report.mission_survival_probability == 1.0

    def test_drift_rate_sets_the_median(self):
        fast = reliability_report(make_result(1.0), units.years(10.0))
        slow = reliability_report(make_result(0.1), units.years(10.0))
        assert fast.em_chip_median_ttf_s < slow.em_chip_median_ttf_s

    def test_survival_falls_with_mission_length(self):
        result = make_result(0.5)
        short = reliability_report(result, units.years(1.0))
        long = reliability_report(result, units.years(30.0))
        assert long.mission_survival_probability \
            <= short.mission_survival_probability

    def test_bti_margin_passthrough(self):
        report = reliability_report(make_result(0.1), units.years(5.0))
        assert report.bti_margin == pytest.approx(0.02)

    def test_more_wires_less_survival(self):
        result = make_result(0.5)
        few = reliability_report(result, units.years(10.0),
                                 wires_per_core=4)
        many = reliability_report(result, units.years(10.0),
                                  wires_per_core=4096)
        assert many.mission_survival_probability \
            <= few.mission_survival_probability

    def test_describe_is_readable(self):
        text = reliability_report(make_result(0.2),
                                  units.years(10.0)).describe()
        assert "BTI margin" in text
        assert "mission survival" in text

    def test_rejects_bad_mission(self):
        with pytest.raises(SimulationError):
            reliability_report(make_result(0.1), 0.0)

    def test_rejects_bad_threshold(self):
        with pytest.raises(SimulationError):
            reliability_report(make_result(0.1), units.years(1.0),
                               failure_drift_ohm=0.0)
