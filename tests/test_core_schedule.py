"""Tests for repro.core.schedule (schedules and runners)."""

import pytest

from repro import units
from repro.core.schedule import (
    PeriodicSchedule,
    run_bti_schedule,
    run_em_schedule,
)
from repro.em.line import EmLine, PAPER_EM_STRESS
from repro.errors import ScheduleError


class TestPeriodicSchedule:
    def test_cycle_and_total_length(self):
        schedule = PeriodicSchedule.from_hours(2.0, 1.0, 4)
        assert schedule.cycle_length_s == pytest.approx(units.hours(3.0))
        assert schedule.total_length_s == pytest.approx(units.hours(12.0))

    def test_duty_cycle(self):
        schedule = PeriodicSchedule.from_hours(3.0, 1.0, 1)
        assert schedule.duty_cycle == pytest.approx(0.75)

    def test_ratio_label(self):
        schedule = PeriodicSchedule.from_hours(1.0, 0.5, 1)
        assert schedule.ratio_label == "1h : 0.5h"

    def test_rejects_non_positive_stress(self):
        with pytest.raises(ScheduleError):
            PeriodicSchedule(0.0, 1.0, 1)

    def test_rejects_negative_recovery(self):
        with pytest.raises(ScheduleError):
            PeriodicSchedule(1.0, -1.0, 1)

    def test_rejects_zero_cycles(self):
        with pytest.raises(ScheduleError):
            PeriodicSchedule(1.0, 1.0, 0)

    def test_zero_recovery_is_allowed(self):
        schedule = PeriodicSchedule(units.hours(1.0), 0.0, 2)
        assert schedule.duty_cycle == 1.0


class TestBtiRunner:
    def test_one_record_per_cycle(self, calibration):
        outcome = run_bti_schedule(
            calibration.build_model(),
            PeriodicSchedule.from_hours(1.0, 1.0, 3))
        assert len(outcome.records) == 3
        assert [record.cycle for record in outcome.records] == [1, 2, 3]

    def test_balanced_schedule_is_fully_healed(self, calibration):
        """Fig. 4: 1h : 1h keeps the permanent component at ~0."""
        outcome = run_bti_schedule(
            calibration.build_model(),
            PeriodicSchedule.from_hours(1.0, 1.0, 5))
        assert outcome.fully_healed
        assert outcome.final_permanent_v == pytest.approx(0.0, abs=1e-9)

    def test_unbalanced_schedule_accumulates_permanent(self, calibration):
        """Fig. 4: longer stress intervals leave growing residue."""
        outcome = run_bti_schedule(
            calibration.build_model(),
            PeriodicSchedule.from_hours(4.0, 1.0, 5))
        permanents = outcome.permanent_per_cycle_v
        assert all(b > a for a, b in zip(permanents, permanents[1:]))
        assert not outcome.fully_healed

    def test_recovery_reduces_within_each_cycle(self, calibration):
        outcome = run_bti_schedule(
            calibration.build_model(),
            PeriodicSchedule.from_hours(1.0, 1.0, 3))
        for record in outcome.records:
            assert record.vth_after_recovery_v \
                < record.vth_after_stress_v

    def test_zero_recovery_matches_continuous_stress(self, calibration):
        scheduled = run_bti_schedule(
            calibration.build_model(),
            PeriodicSchedule(units.hours(1.0), 0.0, 4))
        continuous = calibration.build_model()
        continuous.apply_stress(units.hours(4.0))
        assert scheduled.final_vth_v == pytest.approx(
            continuous.delta_vth_v, rel=1e-6)

    def test_records_track_elapsed_time(self, calibration):
        outcome = run_bti_schedule(
            calibration.build_model(),
            PeriodicSchedule.from_hours(1.0, 0.5, 2))
        assert outcome.records[-1].time_s == pytest.approx(
            units.hours(3.0))


class TestEmRunner:
    def test_short_schedule_stays_void_free(self, fast_em_config):
        """Short stress intervals with reverse-current recovery keep
        the stress below critical (Fig. 7 regime)."""
        outcome = run_em_schedule(
            EmLine(config=fast_em_config),
            PeriodicSchedule(units.minutes(15.0), units.minutes(15.0),
                             8),
            PAPER_EM_STRESS)
        assert outcome.survived_nucleation

    def test_continuous_schedule_nucleates(self, fast_em_config):
        outcome = run_em_schedule(
            EmLine(config=fast_em_config),
            PeriodicSchedule(units.minutes(60.0), 0.0, 4),
            PAPER_EM_STRESS)
        assert outcome.nucleation_cycle is not None

    def test_default_recovery_is_reversed_stress(self, fast_em_config):
        line = EmLine(config=fast_em_config)
        outcome = run_em_schedule(
            line,
            PeriodicSchedule(units.minutes(30.0), units.minutes(30.0),
                             2),
            PAPER_EM_STRESS)
        # With symmetric reversal, the end-of-cycle resistance returns
        # to fresh (no nucleation, no void).
        fresh = line.wire.resistance_at(PAPER_EM_STRESS.temperature_k)
        assert outcome.final_resistance_ohm == pytest.approx(fresh)

    def test_records_expose_resistance_pairs(self, fast_em_config):
        outcome = run_em_schedule(
            EmLine(config=fast_em_config),
            PeriodicSchedule(units.minutes(120.0), units.minutes(30.0),
                             3),
            PAPER_EM_STRESS)
        assert len(outcome.records) == 3
        last = outcome.records[-1]
        assert last.resistance_after_recovery_ohm \
            <= last.resistance_after_stress_ohm + 1e-9
