"""Fault-injection tests for the crash-safe sweep runner.

The sweep runner promises three things under failure (PR 5):

* **attribution** -- a task that raises is reported *as that task*
  (``TaskError.task_index``, ``on_error="collect"`` records), never
  as an anonymous pool crash;
* **recovery** -- a worker death (``BrokenProcessPool``) or an
  unpicklable task/result mid-run degrades to chunk-level serial
  re-execution with correct, in-order results;
* **determinism** -- with ``seed`` set, results are byte-identical to
  a clean serial run under every failure / retry scenario, because
  retries and fallbacks re-derive the same per-task seed sequences.

Pooled cases force a small pool (``REPRO_SWEEP_TEST_WORKERS``, default
2) and ``min_tasks_for_pool=1`` so the pooled code path runs even on
single-core CI runners.
"""

from __future__ import annotations

import math
import os
import threading
from functools import partial

import numpy as np
import pytest

from repro import units
from repro.analysis.sensitivity import one_at_a_time
from repro.assist.sweeps import sweep_load_size_pooled
from repro.em.statistics import (
    WirePopulationSpec,
    sample_population_ttfs_parallel,
)
from repro.errors import SimulationError, TaskError
from repro.solvers import (
    FactorizationCache,
    SweepReport,
    TaskFailure,
    run_sweep,
)
from repro.system.scheduler import NoRecoveryPolicy
from repro.system.sweeps import ChipConfig, run_lifetime_sweep
from repro.system.workload import ConstantWorkload

#: Worker count of every pooled case; the CI fault-injection job pins
#: it to 2 so small runners still exercise the pool path.
WORKERS = int(os.environ.get("REPRO_SWEEP_TEST_WORKERS", "2"))

#: Force the pool on regardless of task count.
POOL = {"max_workers": WORKERS, "min_tasks_for_pool": 1}


# -- module-level workers (picklable) --------------------------------------


def _double(task):
    return task * 2


def _fail_on(bad, task):
    if task in bad:
        raise ValueError(f"boom on {task}")
    return task * 10


def _seeded_draw(task, seed_sequence):
    rng = np.random.default_rng(seed_sequence)
    return float(rng.normal()) + task


def _flaky(marker_dir, task):
    """Fails the first time each task is attempted, then succeeds."""
    marker = os.path.join(marker_dir, f"{task}.attempted")
    if not os.path.exists(marker):
        with open(marker, "w"):
            pass
        raise RuntimeError(f"transient failure on task {task}")
    return task * 3


def _flaky_seeded(marker_dir, task, seed_sequence):
    """Draws from the task stream *before* failing the first attempt,
    so a retry that naively reused the sequence object would differ."""
    rng = np.random.default_rng(seed_sequence)
    value = float(rng.normal()) + task
    marker = os.path.join(marker_dir, f"{task}.attempted")
    if not os.path.exists(marker):
        with open(marker, "w"):
            pass
        raise RuntimeError(f"transient failure on task {task}")
    return value


def _die_in_worker(parent_pid, task):
    if os.getpid() != parent_pid:
        os._exit(1)
    return task * 2


def _seeded_die_in_worker(parent_pid, task, seed_sequence):
    if os.getpid() != parent_pid:
        os._exit(1)
    return _seeded_draw(task, seed_sequence)


def _type_name(task):
    return type(task).__name__


def _lock_result_on(bad, task):
    if task == bad:
        return threading.Lock()
    return task


class _UnpicklableError(Exception):
    def __reduce__(self):
        raise TypeError("this exception refuses to pickle")


def _raise_unpicklable(bad, task):
    if task == bad:
        raise _UnpicklableError(f"boom on {task}")
    return task


#: Long-lived named cache, as most of the real ones are (named-cache
#: totals are durable either way, so lifetime only affects ``clear``).
_TEST_CACHE = FactorizationCache(maxsize=64, name="test.sweep.cache")


def _touch_named_cache(task):
    _TEST_CACHE.get_or_build(task, object)
    _TEST_CACHE.get_or_build(task, object)
    return task


def _drive_batched_engine(task):
    # Build, use and drop a batched engine inside the task: its
    # grouped-solve traffic must still reach the chunk telemetry.
    from repro.em.korhonen import KorhonenBatch, KorhonenConfig
    batch = KorhonenBatch(1e-3, 4,
                          KorhonenConfig(n_nodes=21, max_dt_s=10.0))
    batch.advance(20.0, 1e-14, 1e13)
    return task


def _noisy_metric(params, seed_sequence=None):
    draw = 0.0
    if seed_sequence is not None:
        draw = float(np.random.default_rng(seed_sequence).normal())
    return params["x"] * 2.0 + 1e-3 * draw


def _fragile_metric(params):
    if params["y"] > 2.0:
        raise ValueError("metric blew up")
    return params["x"] * 2.0


@pytest.fixture()
def no_pool(monkeypatch):
    """Make any pool start-up in run_sweep an immediate failure."""
    import repro.solvers.sweep as sweep_module

    class _Forbidden:
        def __init__(self, *args, **kwargs):
            raise AssertionError(
                "ProcessPoolExecutor must not start here")

    monkeypatch.setattr(sweep_module, "ProcessPoolExecutor",
                        _Forbidden)


# -- attribution -----------------------------------------------------------


class TestErrorAttribution:
    def test_pooled_failure_reports_task_index(self):
        fn = partial(_fail_on, frozenset({7}))
        with pytest.raises(TaskError) as excinfo:
            run_sweep(fn, list(range(12)), chunk_size=3, **POOL)
        error = excinfo.value
        assert error.task_index == 7
        assert error.chunk_index == 7 // 3
        assert error.attempts == 1
        assert isinstance(error.__cause__, ValueError)
        assert "boom on 7" in str(error)

    def test_serial_failure_reports_task_index(self):
        fn = partial(_fail_on, frozenset({2}))
        with pytest.raises(TaskError) as excinfo:
            run_sweep(fn, list(range(5)), max_workers=1)
        assert excinfo.value.task_index == 2
        assert isinstance(excinfo.value.__cause__, ValueError)

    def test_unpicklable_exception_still_attributed(self):
        fn = partial(_raise_unpicklable, 5)
        with pytest.raises(TaskError) as excinfo:
            run_sweep(fn, list(range(8)), **POOL)
        error = excinfo.value
        assert error.task_index == 5
        # The exception object could not cross the process boundary,
        # but the worker's traceback text did.
        assert error.__cause__ is None
        assert "worker traceback" in str(error)
        assert "_UnpicklableError" in str(error)

    def test_invalid_knobs_rejected(self):
        with pytest.raises(SimulationError):
            run_sweep(_double, [1, 2], on_error="explode")
        with pytest.raises(SimulationError):
            run_sweep(_double, [1, 2], retries=-1)


# -- collect / skip policies ----------------------------------------------


class TestCollectAndSkip:
    FN = staticmethod(partial(_fail_on, frozenset({2, 5})))

    def test_collect_preserves_ordering(self):
        results = run_sweep(self.FN, list(range(8)),
                            on_error="collect", **POOL)
        assert len(results) == 8
        for index, result in enumerate(results):
            if index in (2, 5):
                assert isinstance(result, TaskFailure)
                assert result.task_index == index
                assert result.error_type == "ValueError"
            else:
                assert result == index * 10

    def test_skip_omits_failures_in_order(self):
        results = run_sweep(self.FN, list(range(8)),
                            on_error="skip", **POOL)
        assert results == [index * 10 for index in range(8)
                           if index not in (2, 5)]

    def test_failures_recorded_on_report(self):
        reports = []
        run_sweep(self.FN, list(range(8)), on_error="collect",
                  on_report=reports.append, **POOL)
        (report,) = reports
        assert not report.ok
        assert [f.task_index for f in report.failures] == [2, 5]
        assert sum(chunk.n_failures for chunk in report.chunks) == 2


# -- retries ---------------------------------------------------------------


class TestRetries:
    def test_flaky_tasks_succeed_on_retry(self, tmp_path):
        fn = partial(_flaky, str(tmp_path))
        reports = []
        results = run_sweep(fn, list(range(6)), retries=1,
                            on_report=reports.append, **POOL)
        assert results == [task * 3 for task in range(6)]
        (report,) = reports
        assert report.ok
        assert report.retries == 6  # every task failed exactly once
        assert sum(chunk.retries for chunk in report.chunks) == 6

    def test_retry_rederives_identical_seed_stream(self, tmp_path):
        tasks = list(range(10))
        clean = run_sweep(_seeded_draw, tasks, max_workers=1, seed=17)
        flaky = partial(_flaky_seeded, str(tmp_path))
        retried = run_sweep(flaky, tasks, seed=17, retries=1, **POOL)
        assert retried == clean

    def test_exhausted_retries_count_attempts(self):
        fn = partial(_fail_on, frozenset({3}))
        results = run_sweep(fn, list(range(6)), retries=2,
                            on_error="collect", **POOL)
        failure = results[3]
        assert isinstance(failure, TaskFailure)
        assert failure.attempts == 3
        with pytest.raises(TaskError) as excinfo:
            run_sweep(fn, list(range(6)), retries=2, **POOL)
        assert excinfo.value.attempts == 3


# -- pool breakage recovery ------------------------------------------------


class TestPoolRecovery:
    def test_worker_death_recovers_in_order(self):
        fn = partial(_die_in_worker, os.getpid())
        reports = []
        results = run_sweep(fn, list(range(8)), chunk_size=2,
                            on_report=reports.append, **POOL)
        assert results == [task * 2 for task in range(8)]
        (report,) = reports
        assert report.mode == "pool+serial-fallback"
        assert report.fallback_reasons
        assert "BrokenProcessPool" in " ".join(report.fallback_reasons)
        assert any(chunk.executed_in == "serial-fallback"
                   for chunk in report.chunks)

    def test_worker_death_keeps_seeded_results_byte_identical(self):
        tasks = list(range(9))
        clean = run_sweep(_seeded_draw, tasks, max_workers=1, seed=23)
        dying = partial(_seeded_die_in_worker, os.getpid())
        recovered = run_sweep(dying, tasks, seed=23, chunk_size=2,
                              **POOL)
        assert recovered == clean

    def test_unpicklable_task_mid_list_degrades(self):
        tasks = [0, 1, 2, threading.Lock(), 4, 5, 6, 7]
        reports = []
        results = run_sweep(_type_name, tasks, chunk_size=2,
                            on_report=reports.append, **POOL)
        assert results == ["int", "int", "int", "lock",
                           "int", "int", "int", "int"]
        (report,) = reports
        assert report.mode == "pool+serial-fallback"
        # Only the chunk holding the lock degraded; the rest pooled.
        fallbacks = [chunk for chunk in report.chunks
                     if chunk.executed_in == "serial-fallback"]
        assert [chunk.index for chunk in fallbacks] == [1]

    def test_unpicklable_result_degrades(self):
        fn = partial(_lock_result_on, 5)
        results = run_sweep(fn, list(range(8)), chunk_size=2, **POOL)
        assert results[:5] == [0, 1, 2, 3, 4]
        assert isinstance(results[5], type(threading.Lock()))
        assert results[6:] == [6, 7]

    def test_unpicklable_fn_stays_serial_with_reason(self):
        offset = 10
        reports = []
        results = run_sweep(lambda task: task + offset,
                            list(range(8)), on_report=reports.append,
                            **POOL)
        assert results == [task + 10 for task in range(8)]
        (report,) = reports
        assert report.mode == "serial"
        assert report.serial_reason == "function is not picklable"

    def test_unpicklable_probe_task_stays_serial(self):
        tasks = [threading.Lock(), 1, 2, 3]
        reports = []
        results = run_sweep(_type_name, tasks,
                            on_report=reports.append, **POOL)
        assert results == ["lock", "int", "int", "int"]
        (report,) = reports
        assert report.serial_reason == "probe task is not picklable"


# -- telemetry -------------------------------------------------------------


class TestReportTelemetry:
    def test_clean_pooled_run(self):
        reports = []
        run_sweep(_double, list(range(16)), chunk_size=4,
                  on_report=reports.append, **POOL)
        (report,) = reports
        assert report.ok
        assert report.mode == "pool"
        assert report.serial_reason is None
        assert not report.fallback_reasons
        assert report.n_tasks == 16 and report.n_chunks == 4
        assert all(chunk.executed_in == "pool"
                   for chunk in report.chunks)
        assert all(chunk.wall_time_s >= 0.0
                   for chunk in report.chunks)
        assert report.wall_time_s > 0.0
        assert "16 tasks" in report.summary()

    def test_chunks_partition_tasks_in_order(self):
        reports = []
        run_sweep(_double, list(range(11)), chunk_size=3,
                  max_workers=1, on_report=reports.append)
        (report,) = reports
        spans = [(chunk.start, chunk.stop) for chunk in report.chunks]
        assert spans == [(0, 3), (3, 6), (6, 9), (9, 11)]

    def test_below_threshold_reason_recorded(self):
        reports = []
        run_sweep(_double, [1, 2, 3], max_workers=8,
                  on_report=reports.append)
        (report,) = reports
        assert report.mode == "serial"
        assert "min_tasks_for_pool" in report.serial_reason

    def test_progress_monotone_to_completion(self):
        for kwargs in ({"max_workers": 1}, dict(POOL)):
            calls = []
            run_sweep(_double, list(range(10)), chunk_size=3,
                      progress=lambda done, total:
                      calls.append((done, total)),
                      **kwargs)
            assert calls[-1] == (10, 10)
            assert [total for _, total in calls] == [10] * len(calls)
            dones = [done for done, _ in calls]
            assert dones == sorted(dones)

    def test_named_cache_counters_surfaced(self):
        for kwargs in ({"max_workers": 1}, dict(POOL)):
            _TEST_CACHE.clear()  # per-task keys: 1 miss + 1 hit each
            reports = []
            run_sweep(_touch_named_cache, list(range(6)),
                      on_report=reports.append, **kwargs)
            counters = reports[0].cache_counters["test.sweep.cache"]
            assert counters == {"hits": 6, "misses": 6}

    def test_batched_engine_counters_surfaced(self):
        # Two backward-Euler steps of four wires per task: the grouped
        # solves of an engine that lives and dies inside the task must
        # land in the report (with the batched keys alongside the
        # base hit/miss delta).
        for kwargs in ({"max_workers": 1}, dict(POOL)):
            reports = []
            run_sweep(_drive_batched_engine, list(range(3)),
                      on_report=reports.append, **kwargs)
            counters = reports[0].cache_counters[
                "em.korhonen.lu.batched"]
            assert counters["batched_solves"] == 6
            assert counters["batched_rows"] == 24
            assert counters["misses"] == 3

    def test_empty_sweep_reports(self):
        reports = []
        assert run_sweep(_double, [],
                         on_report=reports.append) == []
        (report,) = reports
        assert report.n_tasks == 0 and report.ok

    def test_report_delivered_before_raise(self):
        reports = []
        fn = partial(_fail_on, frozenset({1}))
        with pytest.raises(TaskError):
            run_sweep(fn, list(range(4)), max_workers=1,
                      on_report=reports.append)
        (report,) = reports
        assert [f.task_index for f in report.failures] == [1]


# -- call-site threading ---------------------------------------------------


class TestSensitivityCallSite:
    BASELINE = {"x": 1.0, "y": 2.0}
    SPANS = {"x": (0.5, 1.5), "y": (1.0, 3.0)}

    def test_threshold_forwarded_keeps_small_studies_serial(
            self, no_pool):
        results = one_at_a_time(_noisy_metric, self.BASELINE,
                                self.SPANS, max_workers=8,
                                min_tasks_for_pool=99)
        assert len(results) == 2

    def test_seed_passthrough_is_deterministic(self):
        first = one_at_a_time(_noisy_metric, self.BASELINE,
                              self.SPANS, seed=3)
        again = one_at_a_time(_noisy_metric, self.BASELINE,
                              self.SPANS, seed=3)
        assert first == again
        # The sequences actually reached the metric: the noise term
        # shifts the result away from the noiseless evaluation.
        noiseless = one_at_a_time(_noisy_metric, self.BASELINE,
                                  self.SPANS)
        assert first != noiseless

    def test_collect_records_nan_for_failed_cells(self):
        reports = []
        results = one_at_a_time(_fragile_metric, self.BASELINE,
                                self.SPANS, on_error="collect",
                                on_report=reports.append)
        by_name = {result.parameter: result for result in results}
        assert math.isnan(by_name["y"].high_metric)  # x stays 1 -> ok
        assert by_name["x"].low_metric == 1.0
        assert len(reports[0].failures) == 1

    def test_skip_policy_rejected(self):
        with pytest.raises(SimulationError):
            one_at_a_time(_noisy_metric, self.BASELINE, self.SPANS,
                          on_error="skip")


class TestStatisticsCallSite:
    SPEC = WirePopulationSpec(n_wires=16,
                              median_ttf_s=units.years(20.0),
                              sigma=0.4)

    def test_report_threaded_through(self):
        reports = []
        ttfs = sample_population_ttfs_parallel(
            self.SPEC, n_chips=100, seed=5, chunk_chips=32,
            max_workers=1, on_report=reports.append)
        assert ttfs.shape == (100,)
        (report,) = reports
        assert report.n_tasks == 4  # ceil(100 / 32) chunks

    def test_failed_chunks_dropped_from_population(self, monkeypatch):
        import repro.em.statistics as statistics_module

        clean = sample_population_ttfs_parallel(
            self.SPEC, n_chips=100, seed=5, chunk_chips=32,
            max_workers=1)
        original = statistics_module._sample_chip_chunk

        def fragile(task, seed_sequence):
            if task[1] < 32:  # the 4-chip remainder chunk
                raise RuntimeError("chunk lost")
            return original(task, seed_sequence)

        monkeypatch.setattr(statistics_module, "_sample_chip_chunk",
                            fragile)
        reports = []
        ttfs = sample_population_ttfs_parallel(
            self.SPEC, n_chips=100, seed=5, chunk_chips=32,
            max_workers=1, on_error="collect",
            on_report=reports.append)
        assert ttfs.shape == (96,)
        assert [f.task_index for f in reports[0].failures] == [3]
        # The surviving chips are the clean run's, byte for byte.
        assert np.array_equal(ttfs, clean[:96])


class TestLifetimeSweepCallSite:
    def test_report_and_policies_threaded_through(self):
        reports = []
        result = run_lifetime_sweep(
            {"none": NoRecoveryPolicy()},
            {"flat": ConstantWorkload(n_cores=4, utilization=0.5)},
            [ChipConfig(2, 2)], n_epochs=3, seed=1, max_workers=1,
            retries=1, on_error="collect", on_report=reports.append)
        assert len(result) == 1
        (report,) = reports
        assert report.ok and report.n_tasks == 1


class TestAssistCallSite:
    def test_report_threaded_through(self):
        reports = []
        points = sweep_load_size_pooled(
            (1, 2), max_workers=1, on_report=reports.append)
        assert len(points) == 2
        assert points[0].delay_normalized == 1.0
        (report,) = reports
        assert report.ok and report.n_tasks == 2
