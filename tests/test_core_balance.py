"""Tests for repro.core.balance (the push-pull balancer)."""

import pytest

from repro import units
from repro.core.balance import PushPullBalancer
from repro.bti.conditions import PASSIVE_RECOVERY
from repro.em.line import EmStressCondition, PAPER_EM_STRESS
from repro.errors import ScheduleError


@pytest.fixture(scope="module")
def balancer(calibration) -> PushPullBalancer:
    return PushPullBalancer(calibration)


class TestBtiBalance:
    def test_lock_safe_interval_matches_calibration(self, balancer,
                                                    calibration):
        assert balancer.lock_safe_stress_interval_s() == pytest.approx(
            calibration.model_config.population.lock_age_s)

    def test_one_hour_stress_is_balanceable(self, balancer):
        """The paper's 1h stress balances with at most 1h recovery."""
        result = balancer.balance_bti(units.hours(1.0))
        assert result.schedule.recovery_interval_s <= units.hours(1.0)
        assert result.permanent_vth_v == pytest.approx(0.0, abs=1e-9)

    def test_balanced_schedule_has_tiny_residual(self, balancer):
        result = balancer.balance_bti(units.hours(1.0))
        peak = result.schedule.stress_interval_s
        model_scale = balancer.calibration.model_config \
            .population.vth_full_shift_v
        assert result.residual_vth_v < 0.05 * model_scale

    def test_passive_recovery_cannot_balance(self, balancer):
        with pytest.raises(ScheduleError):
            balancer.balance_bti(units.hours(1.0),
                                 recovery=PASSIVE_RECOVERY,
                                 max_ratio=4.0)

    def test_rejects_non_positive_interval(self, balancer):
        with pytest.raises(ScheduleError):
            balancer.balance_bti(0.0)


class TestEmBalance:
    def test_finds_a_delaying_schedule(self, balancer):
        result = balancer.balance_em(PAPER_EM_STRESS, duty_cycle=0.75)
        assert result.nucleation_delay_factor > 2.0
        assert result.schedule.duty_cycle == pytest.approx(0.75)

    def test_lower_duty_cycle_delays_more(self, balancer):
        hard = balancer.balance_em(PAPER_EM_STRESS, duty_cycle=0.9)
        easy = balancer.balance_em(PAPER_EM_STRESS, duty_cycle=0.6)
        assert easy.nucleation_delay_factor \
            > hard.nucleation_delay_factor

    def test_rejects_bad_duty_cycle(self, balancer):
        with pytest.raises(ScheduleError):
            balancer.balance_em(PAPER_EM_STRESS, duty_cycle=0.0)

    def test_rejects_never_nucleating_condition(self, balancer):
        idle = EmStressCondition(0.0, PAPER_EM_STRESS.temperature_k)
        with pytest.raises(ScheduleError):
            balancer.balance_em(idle)
