"""Solver-core equivalence and invalidation tests.

The prefactored paths must reproduce the seed's dense
``np.linalg.solve`` results to 1e-10 (relative) on the PDN, thermal
and Korhonen reference problems, survive topology / operating-point
changes through cache invalidation, and the sweep runner must be
byte-identical for a fixed seed regardless of worker count.
"""

import numpy as np
import pytest
from scipy.linalg import solve_banded

from repro import units
from repro.em.korhonen import BoundaryKind, KorhonenConfig, \
    KorhonenSolver
from repro.em.statistics import WirePopulationSpec, \
    sample_population_ttfs_parallel
from repro.em.wire import COPPER
from repro.pdn.grid import PdnGrid
from repro.pdn.irdrop import _OPERATORS, solve_ir_drop, \
    solve_ir_drop_batch
from repro.solvers import (
    DenseLuOperator,
    FactorizationCache,
    TridiagonalOperator,
    fingerprint,
    run_sweep,
    solve_dense_cached,
)
from repro.thermal.floorplan import Floorplan
from repro.thermal.network import ThermalRCNetwork

RTOL = 1e-10


def relative_error(result, reference):
    return float(np.abs(np.asarray(result) - np.asarray(reference)).max()
                 / np.abs(np.asarray(reference)).max())


class TestFactorizedOperators:
    def test_dense_matches_numpy_solve_bitwise(self):
        rng = np.random.default_rng(3)
        matrix = rng.normal(size=(30, 30)) + 30.0 * np.eye(30)
        rhs = rng.normal(size=30)
        assert np.array_equal(DenseLuOperator(matrix).solve(rhs),
                              np.linalg.solve(matrix, rhs))

    def test_dense_batched_rhs(self):
        rng = np.random.default_rng(4)
        matrix = rng.normal(size=(20, 20)) + 20.0 * np.eye(20)
        rhs = rng.normal(size=(20, 7))
        assert relative_error(DenseLuOperator(matrix).solve(rhs),
                              np.linalg.solve(matrix, rhs)) < RTOL

    def test_dense_singular_raises_linalgerror(self):
        with pytest.raises(np.linalg.LinAlgError):
            DenseLuOperator(np.zeros((4, 4)))

    def test_tridiagonal_matches_solve_banded(self):
        rng = np.random.default_rng(5)
        n = 64
        lower = rng.normal(size=n - 1)
        diag = rng.normal(size=n) + 8.0
        upper = rng.normal(size=n - 1)
        rhs = rng.normal(size=n)
        bands = np.zeros((3, n))
        bands[0, 1:] = upper
        bands[1, :] = diag
        bands[2, :-1] = lower
        reference = solve_banded((1, 1), bands, rhs)
        result = TridiagonalOperator(lower, diag, upper).solve(rhs.copy())
        assert relative_error(result, reference) < RTOL


class TestFactorizationCache:
    def test_hit_and_miss_counting(self):
        cache = FactorizationCache(maxsize=4)
        matrix = np.eye(3) * 2.0
        rhs = np.ones(3)
        solve_dense_cached(matrix, rhs, cache)
        solve_dense_cached(matrix, rhs, cache)
        assert (cache.hits, cache.misses) == (1, 1)

    def test_content_change_invalidates(self):
        cache = FactorizationCache(maxsize=4)
        matrix = np.eye(3) * 2.0
        rhs = np.full(3, 6.0)
        first = solve_dense_cached(matrix, rhs, cache)
        matrix[0, 0] = 4.0  # same object, new content -> new key
        second = solve_dense_cached(matrix, rhs, cache)
        assert cache.misses == 2
        assert first[0] == pytest.approx(3.0)
        assert second[0] == pytest.approx(1.5)

    def test_lru_eviction(self):
        cache = FactorizationCache(maxsize=2)
        for scale in (1.0, 2.0, 3.0):
            solve_dense_cached(np.eye(2) * scale, np.ones(2), cache)
        assert len(cache) == 2
        # The first matrix was evicted: solving it again misses.
        solve_dense_cached(np.eye(2) * 1.0, np.ones(2), cache)
        assert cache.misses == 4

    def test_fingerprint_distinguishes_scalars_and_arrays(self):
        a = fingerprint(1.0, np.arange(4.0))
        b = fingerprint(1.0, np.arange(4.0))
        c = fingerprint(2.0, np.arange(4.0))
        d = fingerprint(1.0, np.arange(5.0))
        assert a == b
        assert len({a, c, d}) == 3


def dense_pdn_reference(grid):
    """The seed's dense assembly + np.linalg.solve, verbatim."""
    n = grid.n_nodes
    conductance = np.zeros((n, n))
    current = np.zeros(n)
    segments = list(grid.segments())
    for segment in segments:
        i = grid.node_index(*segment.a)
        j = grid.node_index(*segment.b)
        g = 1.0 / segment.resistance_ohm
        conductance[i, i] += g
        conductance[j, j] += g
        conductance[i, j] -= g
        conductance[j, i] -= g
    for address, amps in grid.loads_a.items():
        current[grid.node_index(*address)] -= amps
    for address in grid.pads:
        index = grid.node_index(*address)
        conductance[index, :] = 0.0
        conductance[index, index] = 1.0
        current[index] = grid.supply_v
    voltages = np.linalg.solve(conductance, current)
    currents = np.array([
        (voltages[grid.node_index(*segment.a)]
         - voltages[grid.node_index(*segment.b)]) / segment.resistance_ohm
        for segment in segments])
    return voltages, currents


class TestPdnEquivalence:
    def make_grid(self):
        grid = PdnGrid.with_corner_pads(10, 13)
        grid.add_uniform_load(1.5)
        grid.add_load(4, 7, 0.4)
        return grid

    def test_matches_dense_reference(self):
        grid = self.make_grid()
        solution = solve_ir_drop(grid)
        voltages, currents = dense_pdn_reference(grid)
        assert relative_error(solution.node_voltages_v, voltages) < RTOL
        assert relative_error(solution.segment_currents_a,
                              currents) < RTOL

    def test_load_change_reuses_factorization(self):
        grid = self.make_grid()
        solve_ir_drop(grid)
        hits_before = _OPERATORS.hits
        grid.add_load(2, 2, 0.7)
        solution = solve_ir_drop(grid)
        assert _OPERATORS.hits == hits_before + 1
        voltages, _ = dense_pdn_reference(grid)
        assert relative_error(solution.node_voltages_v, voltages) < RTOL

    def test_topology_change_invalidates(self):
        grid = self.make_grid()
        solve_ir_drop(grid)
        misses_before = _OPERATORS.misses
        grid.add_pad(5, 5)  # new Dirichlet row -> new matrix
        solution = solve_ir_drop(grid)
        assert _OPERATORS.misses == misses_before + 1
        voltages, currents = dense_pdn_reference(grid)
        assert relative_error(solution.node_voltages_v, voltages) < RTOL
        assert relative_error(solution.segment_currents_a,
                              currents) < RTOL

    def test_batch_matches_sequential(self):
        grid = self.make_grid()
        patterns = [{(1, 1): 0.2}, {(4, 7): 1.0, (0, 3): 0.1}, {}]
        batch = solve_ir_drop_batch(grid, patterns)
        for pattern, solution in zip(patterns, batch):
            alone = PdnGrid.with_corner_pads(10, 13)
            for (row, col), amps in pattern.items():
                alone.add_load(row, col, amps)
            reference = solve_ir_drop(alone)
            assert np.array_equal(solution.node_voltages_v,
                                  reference.node_voltages_v)


class TestThermalEquivalence:
    def make_network(self):
        return ThermalRCNetwork(Floorplan.grid(4, 4))

    def test_steady_state_matches_dense(self):
        network = self.make_network()
        powers = np.linspace(0.0, 2.0, 16)
        temps = network.steady_state(powers)
        rhs = powers + network.g_ambient * network.config.ambient_k
        reference = np.linalg.solve(network._conductance, rhs)
        assert relative_error(temps, reference) < RTOL

    def test_advance_matches_seed_loop(self):
        network = self.make_network()
        reference = self.make_network()
        powers = np.linspace(0.5, 1.5, 16)
        for duration in (10.0, 3.5, 42.0):
            network.advance(duration, powers, max_dt_s=1.0)
            # Seed loop: rebuild np.diag(C/dt) + G every iteration.
            remaining = duration
            while remaining > 1e-12:
                dt = min(remaining, 1.0)
                system = np.diag(reference.capacity / dt) \
                    + reference._conductance
                rhs = reference.capacity / dt * reference.temperatures_k \
                    + powers + reference.g_ambient \
                    * reference.config.ambient_k
                reference.temperatures_k = np.linalg.solve(system, rhs)
                remaining -= dt
        assert relative_error(network.temperatures_k,
                              reference.temperatures_k) < RTOL

    def test_advance_caches_fixed_dt_system(self):
        network = self.make_network()
        powers = np.ones(16)
        network.advance(30.0, powers, max_dt_s=1.0)
        cache = network._transient_operators
        assert cache.misses == 1
        assert cache.hits == 29

    def test_heating_power_matches_dense(self):
        network = self.make_network()
        background = np.full(16, 0.3)
        target = units.celsius_to_kelvin(110.0)
        power = network.heating_power_w("core22", target, background)
        conductance = network._conductance
        rhs = background + network.g_ambient * network.config.ambient_k
        index = network.floorplan.index_of("core22")
        base = np.linalg.solve(conductance, rhs)[index]
        response = np.linalg.solve(conductance,
                                   np.eye(16)[index])[index]
        assert power == pytest.approx((target - base) / response,
                                      rel=RTOL)


class SeedKorhonen:
    """The seed's banded-solve stepping, kept verbatim as reference."""

    def __init__(self, length_m, n_nodes):
        self.n = n_nodes
        self.dx = length_m / (n_nodes - 1)
        self.stress = np.zeros(n_nodes)

    def step(self, dt, kappa, gradient, start_boundary, end_boundary):
        n, dx = self.n, self.dx
        r = kappa * dt / (dx * dx)
        bands = np.zeros((3, n))
        bands[0, 1:] = -r
        bands[1, :] = 1.0 + 2.0 * r
        bands[2, :-1] = -r
        rhs = self.stress.copy()
        if start_boundary is BoundaryKind.BLOCKED:
            bands[0, 1] = -2.0 * r
            rhs[0] += 2.0 * r * dx * gradient
        else:
            bands[1, 0] = 1.0
            bands[0, 1] = 0.0
            rhs[0] = 0.0
        if end_boundary is BoundaryKind.BLOCKED:
            bands[2, n - 2] = -2.0 * r
            rhs[n - 1] -= 2.0 * r * dx * gradient
        else:
            bands[1, n - 1] = 1.0
            bands[2, n - 2] = 0.0
            rhs[n - 1] = 0.0
        self.stress = solve_banded((1, 1), bands, rhs,
                                   overwrite_ab=True, overwrite_b=True)


class TestKorhonenEquivalence:
    LENGTH = 2.673e-3
    N_NODES = 241
    TEMP = units.celsius_to_kelvin(230.0)

    def conditions(self):
        kappa = COPPER.stress_diffusivity_at(self.TEMP)
        gradient = COPPER.wind_stress_gradient(7.96e10, self.TEMP)
        return kappa, gradient

    def test_blocked_line_matches_seed(self):
        kappa, gradient = self.conditions()
        solver = KorhonenSolver(self.LENGTH,
                                KorhonenConfig(n_nodes=self.N_NODES,
                                               max_dt_s=30.0))
        reference = SeedKorhonen(self.LENGTH, self.N_NODES)
        solver.advance(units.minutes(30.0), kappa, gradient)
        for _ in range(60):
            reference.step(30.0, kappa, gradient,
                           BoundaryKind.BLOCKED, BoundaryKind.BLOCKED)
        assert relative_error(solver.stress, reference.stress) < RTOL

    def test_condition_change_invalidates(self):
        """Recovery (flipped G) and a kappa change refactor correctly."""
        kappa, gradient = self.conditions()
        cold_kappa = COPPER.stress_diffusivity_at(
            units.celsius_to_kelvin(150.0))
        solver = KorhonenSolver(self.LENGTH,
                                KorhonenConfig(n_nodes=self.N_NODES,
                                               max_dt_s=30.0))
        reference = SeedKorhonen(self.LENGTH, self.N_NODES)
        schedule = [(kappa, gradient), (kappa, -gradient),
                    (cold_kappa, gradient)]
        for phase_kappa, phase_gradient in schedule:
            solver.advance(units.minutes(10.0), phase_kappa,
                           phase_gradient)
            for _ in range(20):
                reference.step(30.0, phase_kappa, phase_gradient,
                               BoundaryKind.BLOCKED,
                               BoundaryKind.BLOCKED)
        # kappa appears twice with the same dt: 2 distinct matrices.
        assert solver._operators.misses == 2
        assert relative_error(solver.stress, reference.stress) < RTOL

    def test_void_boundary_matches_seed(self):
        kappa, gradient = self.conditions()
        solver = KorhonenSolver(self.LENGTH,
                                KorhonenConfig(n_nodes=self.N_NODES,
                                               max_dt_s=30.0))
        reference = SeedKorhonen(self.LENGTH, self.N_NODES)
        solver.advance(units.minutes(10.0), kappa, gradient,
                       start_boundary=BoundaryKind.VOID)
        for _ in range(20):
            reference.step(30.0, kappa, gradient,
                           BoundaryKind.VOID, BoundaryKind.BLOCKED)
        assert relative_error(solver.stress, reference.stress) < RTOL


def _double(task):
    return task * 2


def _seeded_draw(task, seed_sequence):
    rng = np.random.default_rng(seed_sequence)
    return float(rng.normal()) + task


class TestSweepDeterminism:
    def test_results_in_task_order(self):
        assert run_sweep(_double, [3, 1, 2], max_workers=1) == [6, 2, 4]

    def test_worker_count_does_not_change_results(self):
        tasks = list(range(24))
        serial = run_sweep(_seeded_draw, tasks, max_workers=1, seed=11)
        for workers in (2, 3):
            parallel = run_sweep(_seeded_draw, tasks,
                                 max_workers=workers, seed=11)
            assert parallel == serial

    def test_chunk_size_does_not_change_results(self):
        tasks = list(range(17))
        serial = run_sweep(_seeded_draw, tasks, max_workers=1, seed=5)
        chunked = run_sweep(_seeded_draw, tasks, max_workers=2,
                            chunk_size=3, seed=5)
        assert chunked == serial

    def test_unpicklable_fn_falls_back_to_serial(self):
        offset = 10
        results = run_sweep(lambda task: task + offset, list(range(8)),
                            max_workers=4)
        assert results == [task + 10 for task in range(8)]

    def test_population_sampling_worker_invariant(self):
        spec = WirePopulationSpec(n_wires=50,
                                  median_ttf_s=units.years(30.0),
                                  sigma=0.4)
        serial = sample_population_ttfs_parallel(
            spec, n_chips=600, seed=9, max_workers=1)
        parallel = sample_population_ttfs_parallel(
            spec, n_chips=600, seed=9, max_workers=3)
        assert serial.shape == (600,)
        assert np.array_equal(serial, parallel)


class TestPoolThreshold:
    """min_tasks_for_pool: small sweeps must never pay pool startup."""

    @pytest.fixture()
    def no_pool(self, monkeypatch):
        """Make any pool start-up in run_sweep an immediate failure."""
        import repro.solvers.sweep as sweep_module

        class _Forbidden:
            def __init__(self, *args, **kwargs):
                raise AssertionError(
                    "ProcessPoolExecutor must not start here")

        monkeypatch.setattr(sweep_module, "ProcessPoolExecutor",
                            _Forbidden)

    def test_small_sweeps_stay_serial(self, no_pool):
        # 3 tasks < DEFAULT_MIN_TASKS_FOR_POOL even with many workers.
        assert run_sweep(_double, [1, 2, 3], max_workers=8) \
            == [2, 4, 6]

    def test_raised_threshold_forces_serial(self, no_pool):
        tasks = list(range(12))
        results = run_sweep(_double, tasks, max_workers=8,
                            min_tasks_for_pool=13)
        assert results == [task * 2 for task in tasks]

    def test_threshold_is_a_pure_performance_knob(self):
        tasks = list(range(9))
        eager = run_sweep(_seeded_draw, tasks, max_workers=2,
                          min_tasks_for_pool=1, seed=3)
        serial = run_sweep(_seeded_draw, tasks, max_workers=1, seed=3)
        assert eager == serial

    def test_invalid_threshold_rejected(self):
        from repro.errors import SimulationError
        with pytest.raises(SimulationError):
            run_sweep(_double, [1, 2], min_tasks_for_pool=0)

    def test_small_population_sampling_stays_serial(self, no_pool):
        # Regression for the 0.37x pooled sampler: many small chunks
        # used to clear the chunk-count gate and start a pool for a
        # few ms of numpy work.  Below _MIN_POOL_SAMPLES total draws
        # the sampler must stay in-process.
        spec = WirePopulationSpec(n_wires=40,
                                  median_ttf_s=units.years(30.0),
                                  sigma=0.4)
        ttfs = sample_population_ttfs_parallel(spec, n_chips=2_000,
                                               seed=3, max_workers=8)
        assert ttfs.shape == (2_000,)

    def test_explicit_threshold_overrides_work_gate(self, no_pool):
        # An explicit min_tasks_for_pool above the chunk count also
        # keeps a *large* population serial.
        spec = WirePopulationSpec(n_wires=4_000,
                                  median_ttf_s=units.years(30.0),
                                  sigma=0.4)
        ttfs = sample_population_ttfs_parallel(
            spec, n_chips=4_000, seed=3, max_workers=8,
            chunk_chips=256, min_tasks_for_pool=17)
        assert ttfs.shape == (4_000,)

    def test_work_gate_does_not_change_the_stream(self):
        # The gate is a scheduling decision only: forcing the pool on
        # the same spec/seed must reproduce the serial stream.
        spec = WirePopulationSpec(n_wires=40,
                                  median_ttf_s=units.years(30.0),
                                  sigma=0.4)
        gated = sample_population_ttfs_parallel(spec, n_chips=600,
                                                seed=9)
        pooled = sample_population_ttfs_parallel(spec, n_chips=600,
                                                 seed=9, max_workers=2,
                                                 min_tasks_for_pool=1)
        assert np.array_equal(gated, pooled)
