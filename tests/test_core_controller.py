"""Tests for repro.core.controller (the Fig. 12b runtime loop)."""

import pytest

from repro import units
from repro.core.controller import (
    ControlAction,
    PeriodicPolicy,
    RuntimeController,
    ThresholdPolicy,
)
from repro.em.line import EmLine, PAPER_EM_STRESS
from repro.errors import SimulationError


def make_controller(calibration, fast_em_config,
                    epoch_minutes: float = 30.0) -> RuntimeController:
    return RuntimeController(
        bti_model=calibration.build_model(),
        em_line=EmLine(config=fast_em_config),
        bti_stress=calibration.model_config.reference_stress,
        em_stress=PAPER_EM_STRESS,
        epoch_s=units.minutes(epoch_minutes))


class TestPolicies:
    def test_periodic_policy_cadence(self):
        policy = PeriodicPolicy(bti_every=2, em_every=0)
        actions = [policy.decide(epoch, 0.0, 0.0, 0.0)
                   for epoch in range(4)]
        assert actions == [ControlAction.RUN_NORMAL,
                           ControlAction.BTI_RECOVERY,
                           ControlAction.RUN_NORMAL,
                           ControlAction.BTI_RECOVERY]

    def test_periodic_policy_em_cadence(self):
        policy = PeriodicPolicy(bti_every=0, em_every=3)
        actions = [policy.decide(epoch, 0.0, 0.0, 0.0)
                   for epoch in range(6)]
        assert actions.count(ControlAction.EM_RECOVERY) == 2

    def test_threshold_policy_triggers_on_bti(self):
        policy = ThresholdPolicy(bti_degradation_threshold=0.01)
        assert policy.decide(0, 0.02, 0.0, 0.0) \
            is ControlAction.BTI_RECOVERY
        assert policy.decide(0, 0.001, 0.0, 0.0) \
            is ControlAction.RUN_NORMAL

    def test_threshold_policy_triggers_on_em_drift(self):
        policy = ThresholdPolicy(bti_degradation_threshold=0.5,
                                 em_drift_threshold_ohm=0.2)
        assert policy.decide(0, 0.0, 0.3, 0.0) \
            is ControlAction.EM_RECOVERY

    def test_bti_wins_ties(self):
        policy = ThresholdPolicy(bti_degradation_threshold=0.01,
                                 em_drift_threshold_ohm=0.1)
        assert policy.decide(0, 0.05, 0.5, 0.0) \
            is ControlAction.BTI_RECOVERY

    def test_policy_validation(self):
        with pytest.raises(SimulationError):
            ThresholdPolicy(bti_degradation_threshold=1.5)
        with pytest.raises(SimulationError):
            PeriodicPolicy(bti_every=-1)


class TestRuntimeController:
    def test_logs_one_entry_per_epoch(self, calibration, fast_em_config):
        controller = make_controller(calibration, fast_em_config)
        entries = controller.run(units.hours(3.0),
                                 PeriodicPolicy(bti_every=2))
        assert len(entries) == 6

    def test_periodic_bti_recovery_bounds_wearout(self, calibration,
                                                  fast_em_config):
        healed = make_controller(calibration, fast_em_config)
        healed.run(units.hours(6.0), PeriodicPolicy(bti_every=2))
        unhealed = make_controller(calibration, fast_em_config)
        unhealed.run(units.hours(6.0), PeriodicPolicy(bti_every=0))
        assert healed.bti_model.delta_vth_v \
            < unhealed.bti_model.delta_vth_v

    def test_em_recovery_epochs_keep_the_load_running(self, calibration,
                                                      fast_em_config):
        controller = make_controller(calibration, fast_em_config)
        controller.run(units.hours(4.0),
                       PeriodicPolicy(bti_every=0, em_every=2))
        assert controller.availability() == 1.0

    def test_bti_recovery_epochs_cost_availability(self, calibration,
                                                   fast_em_config):
        controller = make_controller(calibration, fast_em_config)
        controller.run(units.hours(4.0), PeriodicPolicy(bti_every=2))
        assert controller.availability() == pytest.approx(0.5)

    def test_em_alternation_keeps_wire_fresh(self, calibration,
                                             fast_em_config):
        """Alternating polarity every other epoch cancels the drift."""
        controller = make_controller(calibration, fast_em_config,
                                     epoch_minutes=15.0)
        controller.run(units.hours(4.0),
                       PeriodicPolicy(bti_every=0, em_every=2))
        assert not controller.em_line.nucleated

    def test_threshold_policy_reacts_to_sensed_wearout(self, calibration,
                                                       fast_em_config):
        controller = make_controller(calibration, fast_em_config)
        entries = controller.run(
            units.hours(8.0),
            ThresholdPolicy(bti_degradation_threshold=0.002,
                            em_drift_threshold_ohm=1e6))
        actions = {entry.action for entry in entries}
        assert ControlAction.BTI_RECOVERY in actions

    def test_rejects_bad_duration(self, calibration, fast_em_config):
        controller = make_controller(calibration, fast_em_config)
        with pytest.raises(SimulationError):
            controller.run(0.0, PeriodicPolicy())
