"""Tests for repro.system.aging (vectorized fleet states)."""

import numpy as np
import pytest

from repro import units
from repro.bti.traps import TrapPopulation, TrapPopulationConfig
from repro.em.line import PAPER_EM_STRESS
from repro.errors import SimulationError
from repro.system.aging import FleetBtiState, FleetEmState


class TestFleetBtiState:
    def test_matches_single_population_under_stress(self, calibration):
        """The batched dynamics must agree with TrapPopulation."""
        config = calibration.model_config.population
        fleet = FleetBtiState(3, config)
        single = TrapPopulation(config)
        dt = units.hours(5.0)
        fleet.step(dt, np.array([True, True, True]),
                   np.ones(3), np.ones(3))
        single.stress(dt)
        assert fleet.delta_vth_v()[0] == pytest.approx(
            single.total_vth_v, rel=1e-9)

    def test_matches_single_population_under_recovery(self, calibration):
        config = calibration.model_config.population
        fleet = FleetBtiState(2, config)
        single = TrapPopulation(config)
        stress_dt = units.hours(3.0)
        fleet.step(stress_dt, np.array([True, True]), np.ones(2),
                   np.ones(2))
        single.stress(stress_dt)
        accel = 1e5
        fleet.step(units.hours(1.0), np.array([False, False]),
                   np.ones(2), np.full(2, accel))
        single.recover(units.hours(1.0), accel)
        assert fleet.delta_vth_v()[0] == pytest.approx(
            single.total_vth_v, rel=1e-6)

    def test_mixed_epoch_diverges_units(self):
        fleet = FleetBtiState(2)
        fleet.step(units.hours(2.0), np.array([True, False]),
                   np.ones(2), np.ones(2))
        shifts = fleet.delta_vth_v()
        assert shifts[0] > shifts[1]

    def test_occupancy_stays_bounded(self):
        fleet = FleetBtiState(2)
        fleet.step(units.days(5.0), np.array([True, True]),
                   np.full(2, 3.0), np.ones(2))
        assert np.all(fleet.occupancy >= 0.0)
        assert np.all(fleet.occupancy <= 1.0 + 1e-12)

    def test_capture_acceleration_scales_lock_in(self):
        config = TrapPopulationConfig(n_bins=48,
                                      lock_age_s=units.minutes(75.0),
                                      lock_rate_per_s=5e-5)
        fast = FleetBtiState(1, config)
        slow = FleetBtiState(1, config)
        fast.step(units.hours(8.0), np.array([True]), np.array([1.0]),
                  np.array([1.0]))
        slow.step(units.hours(8.0), np.array([True]), np.array([0.1]),
                  np.array([1.0]))
        assert fast.permanent_v[0] > slow.permanent_v[0]

    def test_rejects_wrong_shapes(self):
        fleet = FleetBtiState(2)
        with pytest.raises(SimulationError):
            fleet.step(1.0, np.array([True]), np.ones(2), np.ones(2))

    def test_rejects_zero_units(self):
        with pytest.raises(SimulationError):
            FleetBtiState(0)


class TestFleetEmState:
    def test_nucleates_at_the_reference_time(self):
        fleet = FleetEmState(1, PAPER_EM_STRESS)
        j = np.array([PAPER_EM_STRESS.current_density_a_m2])
        temp = np.array([PAPER_EM_STRESS.temperature_k])
        step = units.minutes(10.0)
        elapsed = 0.0
        while not fleet.nucleated[0] and elapsed < units.minutes(300):
            fleet.step(step, j, temp)
            elapsed += step
        assert fleet.nucleated[0]
        assert elapsed == pytest.approx(fleet.nucleation_time_ref_s,
                                        abs=2 * step)

    def test_reverse_current_unwinds_progress(self):
        fleet = FleetEmState(1, PAPER_EM_STRESS)
        j = np.array([PAPER_EM_STRESS.current_density_a_m2])
        temp = np.array([PAPER_EM_STRESS.temperature_k])
        fleet.step(units.minutes(30.0), j, temp)
        forward = fleet.progress_s[0]
        fleet.step(units.minutes(30.0), -j, temp)
        assert fleet.progress_s[0] == pytest.approx(0.0, abs=1e-9)
        assert forward > 0.0

    def test_void_grows_and_resistance_rises(self):
        fleet = FleetEmState(1, PAPER_EM_STRESS)
        j = np.array([PAPER_EM_STRESS.current_density_a_m2])
        temp = np.array([PAPER_EM_STRESS.temperature_k])
        fleet.step(units.minutes(600.0), j, temp)
        assert fleet.nucleated[0]
        assert fleet.delta_resistance_ohm()[0] > 0.0

    def test_recovery_refills_faster_than_growth(self):
        fleet = FleetEmState(1, PAPER_EM_STRESS)
        j = np.array([PAPER_EM_STRESS.current_density_a_m2])
        temp = np.array([PAPER_EM_STRESS.temperature_k])
        fleet.step(units.minutes(400.0), j, temp)
        worn = fleet.delta_resistance_ohm()[0]
        fleet.step(units.minutes(100.0), -j, temp)
        healed = fleet.delta_resistance_ohm()[0]
        assert healed < 0.5 * worn

    def test_locked_void_survives_recovery(self):
        fleet = FleetEmState(1, PAPER_EM_STRESS)
        j = np.array([PAPER_EM_STRESS.current_density_a_m2])
        temp = np.array([PAPER_EM_STRESS.temperature_k])
        fleet.step(units.minutes(600.0), j, temp)
        fleet.step(units.minutes(600.0), -j, temp)
        assert fleet.void_locked_m[0] > 0.0

    def test_failure_flags(self):
        fleet = FleetEmState(2, PAPER_EM_STRESS)
        j = np.array([PAPER_EM_STRESS.current_density_a_m2, 0.0])
        temp = np.full(2, PAPER_EM_STRESS.temperature_k)
        fleet.step(units.hours(40.0), j, temp)
        failed = fleet.failed(PAPER_EM_STRESS.temperature_k)
        assert failed[0]
        assert not failed[1]

    def test_rejects_reverse_reference(self):
        with pytest.raises(SimulationError):
            FleetEmState(1, PAPER_EM_STRESS.reversed())

    def test_rejects_bad_temperature(self):
        fleet = FleetEmState(1, PAPER_EM_STRESS)
        with pytest.raises(SimulationError):
            fleet.step(1.0, np.array([1e10]), np.array([0.0]))
