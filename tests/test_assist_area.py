"""Tests for repro.assist.area (area costing, optimal sharing)."""

import pytest

from repro.assist.area import (
    AssistAreaModel,
    compensated_header_scale,
    optimal_sharing,
)
from repro.assist.circuitry import AssistCircuit, AssistCircuitConfig
from repro.assist.modes import AssistMode
from repro.errors import SimulationError


class TestAreaModel:
    def test_instance_area_scales_with_headers(self):
        model = AssistAreaModel()
        assert model.instance_area(2.0) > model.instance_area(1.0)

    def test_amortization(self):
        model = AssistAreaModel()
        assert model.area_per_load(4, 1.0) == pytest.approx(
            model.instance_area(1.0) / 4.0)

    def test_rejects_bad_inputs(self):
        model = AssistAreaModel()
        with pytest.raises(SimulationError):
            model.instance_area(0.0)
        with pytest.raises(SimulationError):
            model.area_per_load(0)


class TestCompensation:
    def test_single_load_needs_no_upsizing(self):
        assert compensated_header_scale(1) == 1.0

    def test_scale_grows_with_load(self):
        two = compensated_header_scale(2)
        four = compensated_header_scale(4)
        assert 1.0 < two < four

    def test_compensation_actually_restores_the_swing(self):
        from dataclasses import replace
        base = AssistCircuitConfig()
        target = AssistCircuit(base).solve_mode(
            AssistMode.NORMAL).load_swing_v
        scale = compensated_header_scale(3, base)
        config = replace(
            base, n_loads=3,
            header_params=base.header_params.scaled(scale),
            footer_params=base.footer_params.scaled(scale))
        swing = AssistCircuit(config).solve_mode(
            AssistMode.NORMAL).load_swing_v
        assert swing == pytest.approx(target, abs=0.025)

    def test_impossible_target_raises(self):
        with pytest.raises(SimulationError):
            compensated_header_scale(5, swing_tolerance_v=1e-4,
                                     max_scale=4.0)


class TestOptimalSharing:
    @pytest.fixture(scope="class")
    def points(self):
        return optimal_sharing((1, 2, 3, 4, 5))

    def test_one_point_per_granularity(self, points):
        assert [p.n_loads for p in points] == [1, 2, 3, 4, 5]

    def test_an_interior_optimum_exists(self, points):
        """The paper's 'each load has its own optimal design point':
        amortization wins first, compensation area loses later."""
        costs = [p.cost for p in points]
        best = costs.index(min(costs))
        assert 0 < best < len(costs) - 1

    def test_upsizing_grows_superlinearly(self, points):
        scales = [p.header_scale for p in points]
        assert scales[-1] > 2.0 * scales[1]

    def test_rejects_empty_sweep(self):
        with pytest.raises(SimulationError):
            optimal_sharing(())
