"""Many-core dark-silicon healing study (Section IV-B of the paper).

Simulates a 4x4 many-core chip over a multi-week horizon under three
scheduling policies:

* **no recovery** -- every core carries load every epoch;
* **round-robin healing** -- a rotating core enters BTI active recovery
  each epoch, and the active cores alternate their grid-current
  polarity for EM recovery;
* **dark-silicon rotation** -- the most-aged cores go dark and are
  healed while sitting in the heat of their busy neighbours (the
  paper's Fig. 12(a) arrangement).

Prints the per-policy wearout guardband, permanent component and EM
drift -- the quantities a designer would trade against the capacity
lost to healing epochs.

Usage::

    python examples/manycore_dark_silicon.py [epochs]
"""

import sys

from repro import units
from repro.analysis.reporting import format_table
from repro.system.chip import Chip
from repro.system.dark_silicon import DarkSiliconRotationPolicy
from repro.system.scheduler import (
    NoRecoveryPolicy,
    RoundRobinRecoveryPolicy,
)
from repro.system.simulator import SystemSimulator
from repro.system.workload import DiurnalWorkload


def run(n_epochs: int) -> None:
    policies = {
        "no recovery": lambda chip: NoRecoveryPolicy(),
        "round-robin healing": lambda chip: RoundRobinRecoveryPolicy(
            recovery_slots=2, em_alternate_every=2),
        "dark-silicon rotation": lambda chip: DarkSiliconRotationPolicy(
            chip=chip, n_dark=2, heat_aware=True, dwell_epochs=2,
            em_alternate_every=2),
    }
    rows = []
    for name, build in policies.items():
        chip = Chip(4, 4)
        simulator = SystemSimulator(chip)
        workload = DiurnalWorkload(n_cores=chip.n_cores,
                                   peak_utilization=0.8,
                                   trough_utilization=0.3,
                                   period_epochs=24)
        result = simulator.run(n_epochs, workload, build(chip),
                               record_every=max(n_epochs // 50, 1))
        rows.append((
            name,
            f"{result.guardband:.2%}",
            f"{result.final_permanent_vth_v.max() * 1e3:.2f} mV",
            f"{result.final_em_drift_ohm.max():.3f} ohm",
            f"{result.lost_demand_fraction:.3f}",
        ))
    print(format_table(
        ("policy", "guardband", "worst permanent dVth",
         "worst EM drift", "dropped demand/epoch"),
        rows,
        title=f"4x4 chip, diurnal load, {n_epochs} one-hour epochs"))


def main() -> None:
    n_epochs = int(sys.argv[1]) if len(sys.argv) > 1 else 24 * 21
    run(n_epochs)


if __name__ == "__main__":
    main()
