"""Compensating wearout vs fundamentally fixing it.

The paper's core argument (Section I): adaptive techniques -- slowing
the clock or boosting the supply as the circuit ages -- keep the system
*functional*, "but the wearout itself means that the power/performance
metrics will be degraded and the system runs sluggish or burns more
power gradually".  Deep healing removes the wearout instead.

This example quantifies the running cost of each strategy over a
10-year lifetime at a use-condition stress:

* **frequency derating** -- throughput falls with the aged critical
  path;
* **VDD boost** -- throughput stays at 1.0 but dynamic power grows
  quadratically with the boosted supply (and the knob saturates);
* **deep healing** -- a 1 h : 1 h schedule bounds the wearout; the cost
  is the 50 % recovery downtime, which redundancy (the dark-silicon
  rotation of Section IV-B) converts into spare-core area instead of
  lost throughput.

Also prints the prior-work comparison: how much shift the
signal-probability *rebalancing* of GNOMO/Penelope can remove, vs
active recovery.

Usage::

    python examples/compensation_vs_healing.py
"""

from repro import units
from repro.analysis.reporting import format_table
from repro.bti.conditions import BtiStressCondition
from repro.bti.duty import DutyCycledStressModel, rebalancing_gain
from repro.core.compensation import compare_strategies

LIFETIME = units.years(10.0)
USE_STRESS = BtiStressCondition(
    voltage=0.45, temperature_k=units.celsius_to_kelvin(60.0),
    name="use")


def strategy_comparison() -> None:
    timelines = compare_strategies(LIFETIME, USE_STRESS)
    rows = []
    for timeline in timelines:
        final = timeline.final
        rows.append((
            timeline.name,
            f"{timeline.mean_throughput():.3f}",
            f"{final.throughput_factor:.3f}",
            f"{final.power_factor:.3f}",
            f"{final.residual_shift_v * 1e3:.2f} mV",
        ))
    print(format_table(
        ("strategy", "mean throughput", "final throughput",
         "final power", "residual shift"),
        rows, title="10-year mitigation strategies (1.0 = fresh "
                    "always-on system)"))
    print()
    print("Note: deep healing's throughput column charges the full "
          "recovery downtime to\nthe core itself; with spare-core "
          "rotation (examples/manycore_dark_silicon.py)\nthe chip-level "
          "throughput cost shrinks to the spare fraction.")
    print()


def heating_bill() -> None:
    """The hidden cost of *accelerated* recovery: getting the block hot.

    Healing at 110 degC needs heat.  An isolated block must burn
    heater power; a dark-silicon block amid busy neighbours gets most
    of it for free (Fig. 12a's heat-flow arrows) -- which is exactly
    why the paper pairs accelerated recovery with dark silicon.
    """
    import numpy as np
    from repro.thermal.floorplan import Floorplan
    from repro.thermal.network import ThermalRCNetwork

    network = ThermalRCNetwork(Floorplan.grid(3, 3))
    target = units.celsius_to_kelvin(110.0)
    idle_chip = network.heating_power_w("core11", target, np.zeros(9))
    busy = np.full(9, 1.5)
    busy[4] = 0.0
    dark_silicon = network.heating_power_w("core11", target, busy)
    print(format_table(("healing scenario", "heater power"), [
        ("isolated block, idle chip", f"{idle_chip:.2f} W"),
        ("dark-silicon slot, busy neighbours",
         f"{dark_silicon:.2f} W"),
    ], title="Heater bill for 110 C accelerated recovery "
             "(2x2 mm block)"))
    print()


def rebalancing_comparison() -> None:
    model = DutyCycledStressModel()
    gain_half = rebalancing_gain(model, LIFETIME, 0.9, 0.5, USE_STRESS)
    gain_tenth = rebalancing_gain(model, LIFETIME, 0.9, 0.1, USE_STRESS)
    print(format_table(("mitigation", "shift removed"), [
        ("rebalance signal probability 0.9 -> 0.5",
         f"{gain_half:.1%}"),
        ("rebalance signal probability 0.9 -> 0.1",
         f"{gain_tenth:.1%}"),
        ("balanced active recovery (1 h : 1 h)", "~100% of the "
         "accumulating component"),
    ], title="Prior-work rebalancing vs deep healing"))


def main() -> None:
    strategy_comparison()
    heating_bill()
    rebalancing_comparison()


if __name__ == "__main__":
    main()
