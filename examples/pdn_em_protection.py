"""Protecting a power-delivery network against EM (Figs. 11 and 7).

The paper's assist circuitry exists to protect the *local* power grids,
which carry unidirectional DC current and are the most EM-exposed
structures on a chip.  This example walks the full pipeline:

1. build a local power grid, solve its IR drop, and rank its segments
   by EM exposure (current density -> nucleation time at the operating
   temperature);
2. qualify the most critical segment geometry under accelerated test
   conditions (230 degC, like the paper's experiments) and compare the
   plain time-to-failure against periodic reverse-current recovery
   schedules (the Fig. 7 strategy) at several duty cycles;
3. verify the best schedule against the full Korhonen PDE model.

Usage::

    python examples/pdn_em_protection.py
"""

from repro import units
from repro.analysis.reporting import format_table
from repro.core.schedule import PeriodicSchedule, run_em_schedule
from repro.em.korhonen import KorhonenConfig
from repro.em.line import EmLine, EmLineConfig, EmStressCondition
from repro.em.lumped import LumpedEmModel
from repro.em.wire import Wire
from repro.pdn.grid import GridSegment, PdnGrid
from repro.pdn.irdrop import solve_ir_drop

#: Grid operating temperature (hot spot under a busy block).
GRID_TEMPERATURE_K = units.celsius_to_kelvin(105.0)

#: Accelerated qualification condition (the paper's chamber setting).
QUAL_CONDITION = EmStressCondition(
    current_density_a_m2=units.ma_per_cm2(7.96),
    temperature_k=units.celsius_to_kelvin(230.0),
    name="accelerated qualification")


def build_grid() -> PdnGrid:
    """A local VDD grid with a hot block drawing heavy current."""
    grid = PdnGrid.with_corner_pads(6, 6, stripe_width_m=1e-6,
                                    stripe_thickness_m=0.3e-6)
    grid.add_load(3, 3, 0.06)    # a hot accelerator block
    grid.add_uniform_load(0.04)  # background logic
    return grid


def rank_segments(grid: PdnGrid) -> GridSegment:
    solution = solve_ir_drop(grid)
    print(f"worst IR drop: {solution.worst_drop_v() * 1e3:.1f} mV")
    densities = {id(s): d for s, _c, d in solution.segment_report()}
    exposure = solution.em_exposure(GRID_TEMPERATURE_K, count=5)
    rows = []
    for segment, t_nuc in exposure:
        rows.append((f"{segment.a}->{segment.b}",
                     f"{units.to_years(t_nuc):.1f} y"))
    print(format_table(
        ("segment", "nucleation time at 105 C"), rows,
        title="Most EM-exposed grid segments"))
    print()
    return exposure[0][0]


def schedule_study(segment: GridSegment):
    """Sweep recovery duty cycles on the critical segment geometry."""
    wire = Wire(length_m=segment.length_m, width_m=segment.width_m,
                thickness_m=segment.thickness_m,
                fresh_resistance_ohm=segment.resistance_ohm,
                name="critical segment")
    model = LumpedEmModel(wire)
    baseline = model.time_to_failure(QUAL_CONDITION)
    t_nuc = model.nucleation_time(QUAL_CONDITION)
    rows = [("continuous stress", "-",
             f"{units.to_hours(baseline):.1f} h", "1.00x")]
    best = None
    stress_s = 0.1 * t_nuc
    for duty in (0.95, 0.9, 0.8, 0.75):
        recovery_s = stress_s * (1.0 - duty) / duty
        estimate = model.nucleation_under_periodic_recovery(
            stress_s, recovery_s, QUAL_CONDITION)
        growth = baseline - t_nuc
        ttf = estimate.time_s + growth / duty
        rows.append((f"periodic recovery, duty {duty:.0%}",
                     f"{units.to_minutes(recovery_s):.2f} min",
                     f"{units.to_hours(ttf):.1f} h",
                     f"{ttf / baseline:.2f}x"))
        if best is None or ttf > best[0]:
            best = (ttf, stress_s, recovery_s)
    print(format_table(
        ("strategy", "recovery interval", "TTF", "gain"), rows,
        title="Fig. 7 strategy at accelerated qualification"))
    print()
    _ttf, stress_s, recovery_s = best
    return wire, stress_s, recovery_s


def verify_with_pde(wire: Wire, stress_s: float,
                    recovery_s: float) -> None:
    """Check the chosen schedule against the Korhonen PDE model."""
    line = EmLine(
        wire,
        EmLineConfig(korhonen=KorhonenConfig(n_nodes=301,
                                             max_dt_s=30.0),
                     max_step_s=30.0))
    lumped = LumpedEmModel(wire)
    t_nuc = lumped.nucleation_time(QUAL_CONDITION)
    cycles = max(int(1.5 * t_nuc / (stress_s + recovery_s)), 4)
    outcome = run_em_schedule(
        line, PeriodicSchedule(stress_s, recovery_s, cycles),
        QUAL_CONDITION)
    verdict = ("void-free" if outcome.survived_nucleation
               else f"nucleated in cycle {outcome.nucleation_cycle}")
    window_h = units.to_hours(cycles * (stress_s + recovery_s))
    print(f"PDE verification over {cycles} cycles ({window_h:.1f} h, "
          f"1.5x the continuous nucleation time): {verdict}")


def main() -> None:
    grid = build_grid()
    segment = rank_segments(grid)
    wire, stress_s, recovery_s = schedule_study(segment)
    verify_with_pde(wire, stress_s, recovery_s)


if __name__ == "__main__":
    main()
