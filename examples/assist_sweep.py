"""Pooled Fig. 10 load-sizing study on the compiled circuit engine.

Fans the paper's load-size sweep through
:func:`repro.assist.sweeps.sweep_load_size_pooled`: every point builds
a fresh assist netlist, solves the Normal-mode DC operating point and
runs a full mode-switch transient -- independently, so the grid
parallelizes over the process pool with results identical to a serial
run.  Also prints the Fig. 9 mode-switch matrix (all six ordered mode
transitions) from :func:`repro.assist.sweeps.mode_switch_matrix`.

Reproduces the paper's Fig. 10 trade-off: load delay rises with load
size (deeper droop through the fixed headers/footers) while
mode-switching time falls.

Usage::

    python examples/assist_sweep.py [max_loads]
"""

import sys

from repro.assist import (
    AssistCircuitConfig,
    mode_switch_matrix,
    sweep_load_size_pooled,
)


def run(max_loads: int) -> None:
    config = AssistCircuitConfig()
    sizes = tuple(range(1, max_loads + 1))
    points = sweep_load_size_pooled(sizes, config)

    print(f"Fig. 10 load-size sweep ({len(points)} pooled points)")
    print()
    header = (f"{'loads':>5}  {'swing (V)':>9}  {'delay (norm)':>12}  "
              f"{'switch (ns)':>11}  {'switch (norm)':>13}")
    print(header)
    print("-" * len(header))
    for point in points:
        print(f"{point.n_loads:>5}  {point.load_swing_v:>9.4f}  "
              f"{point.delay_normalized:>12.3f}  "
              f"{point.switching_time_s * 1e9:>11.2f}  "
              f"{point.switching_time_normalized:>13.3f}")
    print()
    rising = points[-1].delay_normalized >= points[0].delay_normalized
    falling = points[-1].switching_time_normalized \
        <= points[0].switching_time_normalized
    print("trade-off: delay "
          + ("rises" if rising else "does not rise")
          + " with load size, switching time "
          + ("falls" if falling else "does not fall")
          + " -- each load has its own optimal design point.")

    print()
    print("Fig. 9 mode-switch matrix (pooled transients)")
    print()
    cells = mode_switch_matrix(config)
    for cell in cells:
        switch = cell.switching_time_s
        if switch == float("inf"):
            label = "never"
        elif switch <= 0.0:
            # Rails never left tolerance: the load keeps operating
            # through the switch (the EM-recovery property).
            label = "immediately"
        else:
            label = f"{switch * 1e9:.2f} ns"
        print(f"  {cell.from_mode.name:>12} -> "
              f"{cell.to_mode.name:<12} settles in {label}  "
              f"(rails -> lvdd {cell.settled_load_vdd_v:.3f} V, "
              f"lvss {cell.settled_load_vss_v:.3f} V)")


def main() -> None:
    max_loads = int(sys.argv[1]) if len(sys.argv) > 1 else 5
    run(max_loads)


if __name__ == "__main__":
    main()
