"""Mixed-policy guardband study on the heterogeneous fleet engine.

Models one shipped population split across deployment realities: a
timezone-staggered diurnal rack that activates recovery (round-robin
deep healing), the same rack shipped without healing firmware, and a
flat-out always-on cohort.  Every chip draws its own process
variation, each rack chip observes the shared diurnal curve at its
own phase offset (:class:`~repro.system.workload.PhasedWorkload` via
``FleetGroup.phases``), and the whole mixed population advances as
one stacked tensor per epoch -- chunked under a byte budget, so the
same script scales from this demo to 100k+ chips.

The paper's question, asked per deployment: how much delay guardband
does each *sub-population* have to budget, and how much of the
no-recovery margin does activating recovery return?

Usage::

    python examples/heterogeneous_fleet.py [chips_per_group] [epochs] \
        [--max-workers N]

``--max-workers`` fans the lifetime chunks out across a process pool;
the byte budget then sizes one *worker's* residency, so total memory
is ``max_workers`` x the budget.  Results merge bit-identically to
the serial chunk stream.
"""

import sys

import numpy as np

from repro.system.fleet import (
    FleetGroup,
    FleetVariationSpec,
    run_fleet_lifetime_study,
    state_bytes_per_chip,
)
from repro.system.scheduler import (
    NoRecoveryPolicy,
    RoundRobinRecoveryPolicy,
)
from repro.system.workload import ConstantWorkload, DiurnalWorkload

N_CORES = 9
DIURNAL_PERIOD = 24


def build_groups(chips_per_group: int):
    """Three deployments of one chip design, back-to-back."""
    diurnal = DiurnalWorkload(n_cores=N_CORES, peak_utilization=0.85,
                              trough_utilization=0.25,
                              period_epochs=DIURNAL_PERIOD)
    # Rack chips come online staggered around the clock: phase
    # offsets sweep the diurnal period across each group.
    phases = tuple((i * DIURNAL_PERIOD) // chips_per_group
                   for i in range(chips_per_group))
    return (
        FleetGroup(n_chips=chips_per_group, workload=diurnal,
                   policy=RoundRobinRecoveryPolicy(
                       recovery_slots=3, em_alternate_every=2),
                   phases=phases, name="rack, deep healing"),
        FleetGroup(n_chips=chips_per_group, workload=diurnal,
                   policy=NoRecoveryPolicy(),
                   phases=phases, name="rack, no recovery"),
        FleetGroup(n_chips=chips_per_group,
                   workload=ConstantWorkload(n_cores=N_CORES,
                                             utilization=0.7),
                   policy=NoRecoveryPolicy(),
                   name="always-on, no recovery"),
    )


def run(chips_per_group: int = 2_000, n_epochs: int = 168,
        max_workers: int | None = None) -> None:
    spec = FleetVariationSpec(capture_sigma=0.06,
                              recovery_sigma=0.08,
                              em_current_sigma=0.05)
    groups = build_groups(chips_per_group)
    n_chips = sum(group.n_chips for group in groups)
    budget = 64 * 1024 * 1024
    print(f"heterogeneous fleet: {n_chips} chips x {n_epochs} epochs "
          f"({len(groups)} groups of {chips_per_group}), 3x3 cores, "
          f"diurnal phases over {DIURNAL_PERIOD} epochs")
    print(f"state budget 64 MiB per worker "
          f"({state_bytes_per_chip(N_CORES)} B/chip -> "
          f"{budget // state_bytes_per_chip(N_CORES)} chips/chunk)")
    if max_workers is not None:
        print(f"chunk executor: up to {max_workers} workers")
    print()
    result = run_fleet_lifetime_study(
        (3, 3), groups=groups, n_epochs=n_epochs,
        record_every=max(n_epochs // 50, 1), variation=spec, seed=0,
        state_budget_bytes=budget, max_workers=max_workers)
    bands = result.guardbands
    quantiles = {}
    start = 0
    for group in groups:
        stop = start + group.n_chips
        rows = bands[start:stop]
        quantiles[group.name] = rows
        print(f"{group.name}:")
        print(f"  guardband p50 {np.quantile(rows, 0.50):7.2%}"
              f"   p99 {np.quantile(rows, 0.99):7.2%}"
              f"   max {rows.max():7.2%}")
        start = stop
    healed_p99 = float(np.quantile(
        quantiles["rack, deep healing"], 0.99))
    baseline_p99 = float(np.quantile(
        quantiles["rack, no recovery"], 0.99))
    saved = baseline_p99 - healed_p99
    print()
    print(f"on the same rack, activating recovery trims the p99 "
          f"guardband by {saved:.2%} absolute "
          f"({saved / baseline_p99:.0%} of the no-recovery margin)")


def main() -> None:
    argv = list(sys.argv[1:])
    max_workers = None
    if "--max-workers" in argv:
        at = argv.index("--max-workers")
        max_workers = int(argv[at + 1])
        del argv[at:at + 2]
    chips = int(argv[0]) if len(argv) > 0 else 2_000
    n_epochs = int(argv[1]) if len(argv) > 1 else 168
    run(chips, n_epochs, max_workers=max_workers)


if __name__ == "__main__":
    main()
