"""Design-space lifetime sweep over the process pool.

Fans a scheduling-policy x workload x chip grid through
:func:`repro.system.sweeps.run_lifetime_sweep`: every cell runs a
fresh :class:`~repro.system.simulator.SystemSimulator` in its own
process (deterministically seeded, so serial and pooled runs are
identical) and comes back as one row of a
:class:`~repro.system.sweeps.SweepResult` table.

Prints the full grid -- guardband, permanent Vth, EM failures,
migration overhead, lost demand -- and the policy with the best
worst-case guardband across all workloads and chips, i.e. the Fig.
12(b) comparison generalized to a design grid.

Usage::

    python examples/lifetime_sweep.py [epochs]
"""

import sys

from repro.system.scheduler import (
    NoRecoveryPolicy,
    RoundRobinRecoveryPolicy,
)
from repro.system.sweeps import ChipConfig, run_lifetime_sweep
from repro.system.workload import ConstantWorkload, DiurnalWorkload


def run(n_epochs: int) -> None:
    policies = {
        "no recovery": NoRecoveryPolicy(),
        "rr heal x1": RoundRobinRecoveryPolicy(
            recovery_slots=1, em_alternate_every=2),
        "rr heal x2": RoundRobinRecoveryPolicy(
            recovery_slots=2, em_alternate_every=2),
    }
    workloads = {
        "flat 60%": ConstantWorkload(n_cores=16, utilization=0.6),
        "diurnal": DiurnalWorkload(n_cores=16, peak_utilization=0.8,
                                   trough_utilization=0.3,
                                   period_epochs=24),
    }
    chips = [ChipConfig(4, 4, name="4x4")]
    result = run_lifetime_sweep(policies, workloads, chips,
                                n_epochs=n_epochs, seed=0,
                                record_every=max(n_epochs // 50, 1))
    print(f"lifetime sweep: {len(result)} cells x "
          f"{n_epochs} epochs")
    print()
    print(result.table())
    print()
    print(f"best worst-case guardband: {result.best_policy()}")


def main() -> None:
    n_epochs = int(sys.argv[1]) if len(sys.argv) > 1 else 24 * 28
    run(n_epochs)


if __name__ == "__main__":
    main()
