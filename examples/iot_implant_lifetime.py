"""IoT / medical-implant lifetime study with deep healing.

The paper's introduction motivates active recovery with ultra-long-life
devices: "some biomedical applications will require a lifetime of more
than 50 years for medical implants", operating near-threshold where
every millivolt of BTI shift costs disproportionate performance.

This example sizes the wearout guardband of such a device three ways:

1. worst-case design (no recovery) for a 50-year mission,
2. passive recovery only (the device's intrinsic sleep periods), and
3. deep healing: its sleep periods are turned into *active accelerated*
   recovery with the assist circuitry (negative bias, and the implant's
   own body heat plus joule heating raising the recovery temperature).

It also projects the EM lifetime of the implant's power grid with and
without alternating-polarity delivery.

Usage::

    python examples/iot_implant_lifetime.py
"""

from repro import units
from repro.analysis.reporting import format_table
from repro.bti.conditions import (
    BtiRecoveryCondition,
    BtiStressCondition,
    PASSIVE_RECOVERY,
)
from repro.core.lifetime import LifetimeAnalyzer
from repro.core.margins import GuardbandModel
from repro.em.ac_stress import AcStressModel
from repro.em.blacks import BlacksModel
from repro.em.line import EmStressCondition
from repro.sensors.ring_oscillator import RingOscillator

#: Mission length the paper quotes for implants.
MISSION_S = units.years(50.0)

#: Near-threshold operation: modest stress voltage, body temperature.
IMPLANT_STRESS = BtiStressCondition(
    voltage=0.40, temperature_k=units.celsius_to_kelvin(37.0),
    name="implant active (0.4 V, 37 C)")

#: Deep-healing recovery: reverse bias during sleep, locally warmed.
IMPLANT_HEALING = BtiRecoveryCondition(
    gate_bias_v=-0.3, temperature_k=units.celsius_to_kelvin(60.0),
    name="sleep healing (-0.3 V, 60 C)")

#: The implant runs a 25 % duty cycle: sense briefly, sleep long.
ACTIVE_INTERVAL_S = units.minutes(15.0)
SLEEP_INTERVAL_S = units.minutes(45.0)

#: Near-threshold oscillator: low supply, tiny overdrive.
IMPLANT_RO = RingOscillator(stages=75, fresh_frequency_hz=10e6,
                            supply_v=0.55, fresh_vth_v=0.30,
                            alpha=1.3)


def bti_guardbands() -> None:
    """Compare the 50-year guardband across the three design styles."""
    model = GuardbandModel(oscillator=IMPLANT_RO)
    worst = model.margin_without_recovery(MISSION_S, IMPLANT_STRESS)
    passive = model.margin_with_schedule(
        MISSION_S, IMPLANT_STRESS, ACTIVE_INTERVAL_S, SLEEP_INTERVAL_S,
        recovery=PASSIVE_RECOVERY)
    healed = model.margin_with_schedule(
        MISSION_S, IMPLANT_STRESS, ACTIVE_INTERVAL_S, SLEEP_INTERVAL_S,
        recovery=IMPLANT_HEALING)
    rows = [
        ("worst-case (no recovery)", f"{worst:.2%}", "-"),
        ("passive sleep only", f"{passive:.2%}",
         f"{1.0 - passive / worst:.0%}"),
        ("deep healing in sleep", f"{healed:.2%}",
         f"{1.0 - healed / worst:.0%}"),
    ]
    print(format_table(
        ("design style", "50-year delay guardband", "margin saved"),
        rows, title="Near-threshold implant, 25 % duty cycle"))
    print()


def bti_lifetimes() -> None:
    """Time until a 5 % delay budget is violated, per design style."""
    analyzer = LifetimeAnalyzer(oscillator=IMPLANT_RO,
                                delay_budget=0.05)
    rows = []
    no_recovery = analyzer.bti_ttf_s(IMPLANT_STRESS)
    rows.append(("no recovery",
                 f"{units.to_years(no_recovery):.1f} y"))
    healed = analyzer.bti_ttf_s(
        IMPLANT_STRESS, IMPLANT_HEALING,
        stress_interval_s=ACTIVE_INTERVAL_S,
        recovery_interval_s=SLEEP_INTERVAL_S)
    rows.append(("deep healing in sleep",
                 "unbounded" if healed == float("inf")
                 else f"{units.to_years(healed):.1f} y"))
    print(format_table(("design style", "BTI lifetime (5% budget)"),
                       rows, title="BTI-limited lifetime"))
    print()


def em_projection() -> None:
    """Power-grid EM lifetime with and without polarity alternation."""
    grid_condition = EmStressCondition(
        current_density_a_m2=units.ma_per_cm2(0.5),
        temperature_k=units.celsius_to_kelvin(37.0),
        name="implant grid")
    blacks = BlacksModel.from_reference(
        ttf_s=units.minutes(900.0),
        current_density_a_m2=units.ma_per_cm2(7.96),
        temperature_k=units.celsius_to_kelvin(230.0))
    dc_ttf = blacks.ttf_s(abs(grid_condition.current_density_a_m2),
                          grid_condition.temperature_k)
    ac_model = AcStressModel()
    enhancement = ac_model.lifetime_enhancement(
        abs(grid_condition.current_density_a_m2), frequency_hz=1.0)
    def show(ttf_s: float) -> str:
        years = units.to_years(ttf_s)
        return f"{years:.0f} y" if years < 1e4 else "> 10000 y"

    rows = [
        ("unidirectional DC delivery", show(dc_ttf)),
        ("alternating polarity (1 Hz)", show(dc_ttf * enhancement)),
    ]
    print(format_table(("power delivery", "EM lifetime (median)"),
                       rows, title="Implant power-grid EM projection"))


def main() -> None:
    bti_guardbands()
    bti_lifetimes()
    em_projection()


if __name__ == "__main__":
    main()
