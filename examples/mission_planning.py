"""Mission planning: from requirements to a deep-healing schedule.

Given a mission lifetime, an operating stress condition, and the
recovery condition the hardware can deliver (how much reverse bias, how
hot the healing intervals can run), :class:`repro.core.RecoveryPlanner`
produces the complete operating plan the paper's methodology implies:

* the longest continuous-operation interval that stays inside the
  lock-in deadline (so nothing ever becomes permanent),
* the healing time per cycle that balances it,
* the grid-current alternation pattern for EM,
* and the resulting design margin vs the no-recovery worst case.

The example plans the same mission for three healing-temperature
options, showing the area/availability lever a designer actually has:
hotter healing intervals need less healing time.

Usage::

    python examples/mission_planning.py
"""

from repro import units
from repro.analysis.reporting import format_table
from repro.bti.conditions import BtiRecoveryCondition, \
    BtiStressCondition
from repro.core.planner import RecoveryPlanner
from repro.em.line import EmStressCondition
from repro.errors import ScheduleError

MISSION = units.years(15.0)
USE_STRESS = BtiStressCondition(
    voltage=0.45, temperature_k=units.celsius_to_kelvin(60.0),
    name="server use (0.45 V, 60 C)")
GRID = EmStressCondition(units.ma_per_cm2(6.0),
                         units.celsius_to_kelvin(105.0),
                         name="local grid hot spot")


def main() -> None:
    planner = RecoveryPlanner()
    rows = []
    for heal_temp_c in (90.0, 110.0, 125.0):
        recovery = BtiRecoveryCondition(
            gate_bias_v=-0.3,
            temperature_k=units.celsius_to_kelvin(heal_temp_c),
            name=f"-0.3 V at {heal_temp_c:.0f} C")
        try:
            plan = planner.plan(MISSION, USE_STRESS, GRID,
                                recovery=recovery,
                                min_availability=0.5)
        except ScheduleError as error:
            rows.append((recovery.name, "not balanceable", "-", "-",
                         "-"))
            continue
        rows.append((
            recovery.name,
            f"{units.to_minutes(plan.bti_stress_interval_s):.0f} / "
            f"{units.to_minutes(plan.bti_recovery_interval_s):.0f} min",
            f"{plan.availability:.1%}",
            f"{plan.expected_margin:.2%}",
            f"{plan.margin_reduction:.0%}",
        ))
    print(format_table(
        ("healing condition", "operate/heal", "availability",
         "margin", "margin saved"),
        rows, title=f"{units.to_years(MISSION):.0f}-year mission plans "
                    "(no-recovery margin: "
                    f"{planner.guardband.margin_without_recovery(MISSION, USE_STRESS):.2%})"))
    print()
    plan = planner.plan(MISSION, USE_STRESS, GRID)
    print(plan.describe())


if __name__ == "__main__":
    main()
