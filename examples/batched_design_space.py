"""Batched design-space sweep: every grid point in one tensor pass.

Drives the paper's two design-space studies through the batched-grid
engines instead of per-point loops:

* the Fig. 10 load-size grid runs as one
  :class:`~repro.circuit.batched.CircuitBatch` -- one stacked DC
  solve plus one stacked mode-switch transient for the whole grid --
  and prints the swing / delay / switching Pareto frontier;
* a wire population's nucleation TTFs are sampled with
  :func:`~repro.em.statistics.sample_nucleation_ttfs_pde`, advancing
  the ``(n_wires, n_nodes)`` Korhonen stress slab through one
  vectorized tridiagonal solve per implicit step.

Both engines produce the same numbers as their per-point
counterparts (bitwise for the PDE, within LAPACK roundoff for the
condensed circuit), so the only thing that changes is the wall
clock.  The grouped-solve telemetry printed at the end shows how the
work was batched.

Usage::

    python examples/batched_design_space.py [max_loads] [n_wires]
"""

import dataclasses
import sys
import time

import numpy as np

from repro.assist import sweep_load_size_pooled
from repro.em import PAPER_EM_STRESS
from repro.em.korhonen import KorhonenConfig
from repro.em.statistics import sample_nucleation_ttfs_pde
from repro.solvers import cache_counters


def run(max_loads: int = 16, n_wires: int = 512) -> None:
    sizes = tuple(range(1, max_loads + 1))
    start = time.perf_counter()
    points = sweep_load_size_pooled(sizes, engine="batched")
    grid_s = time.perf_counter() - start

    print(f"batched Fig. 10 grid: {len(points)} points in one "
          f"stacked sweep ({grid_s:.2f} s)")
    print()
    header = (f"{'loads':>5}  {'swing (V)':>9}  {'delay (norm)':>12}  "
              f"{'switch (norm)':>13}  {'pareto':>6}")
    print(header)
    print("-" * len(header))
    # A grid point is Pareto-optimal when no other point is faster to
    # switch *and* no slower on the load path.
    for point in points:
        dominated = any(
            other.delay_normalized <= point.delay_normalized
            and other.switching_time_normalized
            <= point.switching_time_normalized
            and (other.delay_normalized < point.delay_normalized
                 or other.switching_time_normalized
                 < point.switching_time_normalized)
            for other in points)
        print(f"{point.n_loads:>5}  {point.load_swing_v:>9.4f}  "
              f"{point.delay_normalized:>12.3f}  "
              f"{point.switching_time_normalized:>13.3f}  "
              f"{'no' if dominated else 'yes':>6}")

    print()
    condition = dataclasses.replace(
        PAPER_EM_STRESS,
        current_density_a_m2=PAPER_EM_STRESS.current_density_a_m2
        * 0.05)
    config = KorhonenConfig(n_nodes=201, max_dt_s=1e4)
    start = time.perf_counter()
    ttfs = sample_nucleation_ttfs_pde(
        n_wires, 6e6, 2e5, condition=condition, j_sigma=0.1, seed=1,
        config=config, engine="batched")
    pde_s = time.perf_counter() - start
    finite = ttfs[np.isfinite(ttfs)]
    print(f"batched Korhonen TTF sampling: {n_wires} wires x "
          f"{config.n_nodes} nodes ({pde_s:.2f} s)")
    print(f"  nucleated: {finite.size}/{n_wires}")
    if finite.size:
        hours = np.sort(finite) / 3600.0
        print(f"  t50 = {np.median(hours):.1f} h, "
              f"earliest = {hours[0]:.1f} h, "
              f"latest = {hours[-1]:.1f} h")

    print()
    print("grouped-solve telemetry (rows/solve = batch width):")
    for name, counters in sorted(cache_counters().items()):
        solves = counters.get("batched_solves", 0)
        if not solves:
            continue
        rows = counters["batched_rows"]
        print(f"  {name}: {solves} solves, {rows} rows "
              f"({rows / solves:.0f} rows/solve)")


def main() -> None:
    max_loads = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    n_wires = int(sys.argv[2]) if len(sys.argv) > 2 else 512
    run(max_loads, n_wires)


if __name__ == "__main__":
    main()
