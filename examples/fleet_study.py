"""Population-scale guardband study on the SoA fleet engine.

Runs a Monte Carlo over a fleet of process-varied chips with
:func:`repro.system.fleet.run_fleet_lifetime_study`: every chip draws
its own capture / recovery / EM-current scale factors (lognormal, one
deterministic draw per chip index), then the whole population advances
as one stacked tensor per epoch -- no process pool, no per-chip Python
loop.  At 10k chips the fleet engine clears the horizon in seconds
where the pooled per-cell path takes minutes.

The study asks the paper's system-level question at fleet scale: how
much delay guardband must a *population* budget with and without
activating recovery?  The answer is a guardband distribution -- the
p99 chip, not the mean chip, sets the shipped margin.

Usage::

    python examples/fleet_study.py [n_chips] [epochs] [--max-workers N]

``--max-workers`` fans the lifetime chunks out across a process pool
(one chunk per worker resident at a time, results merged
bit-identically to the serial stream); small populations stay serial
behind the work gate regardless.
"""

import sys

from repro.system.fleet import FleetVariationSpec, run_fleet_lifetime_study
from repro.system.scheduler import (
    NoRecoveryPolicy,
    RoundRobinRecoveryPolicy,
)
from repro.system.workload import ConstantWorkload


def run(n_chips: int = 10_000, n_epochs: int = 168,
        max_workers: int | None = None) -> None:
    spec = FleetVariationSpec(capture_sigma=0.06,
                              recovery_sigma=0.08,
                              em_current_sigma=0.05)
    workload = ConstantWorkload(n_cores=9, utilization=0.6)
    policies = {
        "no recovery": NoRecoveryPolicy(),
        "rr deep healing": RoundRobinRecoveryPolicy(
            recovery_slots=3, em_alternate_every=2),
    }
    print(f"fleet study: {n_chips} chips x {n_epochs} epochs, "
          f"3x3 cores, lognormal variation "
          f"(capture {spec.capture_sigma:.2f} / recovery "
          f"{spec.recovery_sigma:.2f} / EM {spec.em_current_sigma:.2f})")
    if max_workers is not None:
        print(f"chunk executor: up to {max_workers} workers")
    print()
    results = {}
    for name, policy in policies.items():
        result = run_fleet_lifetime_study(
            (3, 3), n_chips, workload, policy, n_epochs=n_epochs,
            record_every=max(n_epochs // 50, 1), variation=spec,
            seed=0, max_workers=max_workers)
        results[name] = result
        print(f"{name}:")
        print(f"  guardband p50 {result.guardband_quantile(0.50):7.2%}"
              f"   p95 {result.guardband_quantile(0.95):7.2%}"
              f"   p99 {result.guardband_quantile(0.99):7.2%}"
              f"   max {result.guardbands.max():7.2%}")
        print(f"  EM-failed chips {result.em_failure_fraction:.2%}, "
              f"dropped demand "
              f"{result.total_dropped_demand.mean():.1f} "
              f"core-epochs/chip")
    baseline = results["no recovery"]
    healed = results["rr deep healing"]
    saved = (baseline.guardband_quantile(0.99)
             - healed.guardband_quantile(0.99))
    print()
    print(f"activating recovery trims the p99 shipping guardband by "
          f"{saved:.2%} absolute "
          f"({saved / baseline.guardband_quantile(0.99):.0%} of the "
          f"no-recovery margin)")


def main() -> None:
    argv = list(sys.argv[1:])
    max_workers = None
    if "--max-workers" in argv:
        at = argv.index("--max-workers")
        max_workers = int(argv[at + 1])
        del argv[at:at + 2]
    n_chips = int(argv[0]) if len(argv) > 0 else 10_000
    n_epochs = int(argv[1]) if len(argv) > 1 else 168
    run(n_chips, n_epochs, max_workers=max_workers)


if __name__ == "__main__":
    main()
