"""Quickstart: the paper's headline experiments in a few lines each.

Runs three things:

1. The Table I protocol -- 24 h accelerated stress, then 6 h recovery
   under each of the four Fig. 2(a) conditions.
2. The Fig. 4 scheduling result -- a balanced 1 h : 1 h stress/recovery
   schedule keeps the permanent BTI component at zero.
3. The Fig. 8/9 assist circuitry -- all three operating modes solved
   with the built-in circuit simulator.

Usage::

    python examples/quickstart.py
"""

from repro import units
from repro.analysis.reporting import format_table
from repro.assist.circuitry import AssistCircuit
from repro.assist.modes import AssistMode
from repro.bti.calibration import default_calibration
from repro.bti.conditions import (
    ACTIVE_ACCELERATED_RECOVERY,
    TABLE1_RECOVERY_CONDITIONS,
)
from repro.core.schedule import PeriodicSchedule, run_bti_schedule


def table1_protocol() -> None:
    """Reproduce Table I: recovery fraction per condition."""
    calibration = default_calibration()
    model = calibration.build_model()
    rows = []
    for condition in TABLE1_RECOVERY_CONDITIONS:
        fraction = model.recovery_fraction_after(
            units.hours(24.0), units.hours(6.0), condition)
        rows.append((condition.name, f"{fraction:.1%}"))
    print(format_table(("recovery condition", "recovered"), rows,
                       title="Table I protocol (24 h stress, 6 h "
                             "recovery)"))
    print()


def balanced_schedule() -> None:
    """Reproduce the Fig. 4 takeaway: 1 h : 1 h -> no permanent wearout."""
    calibration = default_calibration()
    rows = []
    for stress_h, recovery_h in ((1.0, 1.0), (2.0, 1.0), (4.0, 1.0)):
        outcome = run_bti_schedule(
            calibration.build_model(),
            PeriodicSchedule.from_hours(stress_h, recovery_h, 5),
            ACTIVE_ACCELERATED_RECOVERY)
        rows.append((outcome.schedule.ratio_label,
                     f"{outcome.final_permanent_v * 1e3:.3f} mV",
                     "yes" if outcome.fully_healed else "no"))
    print(format_table(
        ("schedule", "permanent after 5 cycles", "fully healed"),
        rows, title="Scheduled recovery (Fig. 4)"))
    print()


def em_recovery() -> None:
    """Reproduce the Fig. 7 takeaway: periodic reversal delays EM."""
    from repro.em.lumped import LumpedEmModel
    from repro.em.line import PAPER_EM_STRESS

    model = LumpedEmModel()
    t_nuc = model.nucleation_time(PAPER_EM_STRESS)
    estimate = model.nucleation_under_periodic_recovery(
        units.minutes(15.0), units.minutes(5.0), PAPER_EM_STRESS)
    print(format_table(("quantity", "value"), [
        ("continuous-stress nucleation",
         f"{units.to_minutes(t_nuc):.0f} min"),
        ("with 15:5 min periodic reversal",
         f"{units.to_minutes(estimate.time_s):.0f} min"),
        ("delay factor (paper: almost 3x)",
         f"{estimate.time_s / t_nuc:.2f}x"),
    ], title="EM periodic recovery (Fig. 7)"))
    print()


def assist_modes() -> None:
    """Solve the assist circuitry in its three modes (Fig. 9)."""
    circuit = AssistCircuit()
    rows = []
    for mode in AssistMode:
        op = circuit.solve_mode(mode)
        rows.append((mode.value,
                     f"{op.load_vdd_v:.3f} V",
                     f"{op.load_vss_v:.3f} V",
                     f"{op.vdd_grid_current_a * 1e3:+.3f} mA"))
    print(format_table(
        ("mode", "load VDD", "load VSS", "VDD-grid current"),
        rows, title="Assist circuitry operating points (Fig. 9)"))


def main() -> None:
    table1_protocol()
    balanced_schedule()
    em_recovery()
    assist_modes()


if __name__ == "__main__":
    main()
